//! The §3.1 attack primitive: setup, hammer, and redirection detection
//! against a live device.
//!
//! Hammering goes through the NVMe controller ([`Ssd::hammer_device_reads`])
//! so interface service rates and §5's rate-limit mitigation apply exactly
//! as they would to per-command submission. Redirection detection reads the
//! L2P entries back through the *device* path, so ECC correction (and
//! ECC-uncorrectable failures) are visible the way the firmware would see
//! them.

use ssdhammer_dram::HammerReport;
use ssdhammer_flash::Ppn;
use ssdhammer_ftl::{Ftl, FtlError};
use ssdhammer_nvme::{NvmeError, Ssd};
use ssdhammer_simkit::{Lba, SimDuration, BLOCK_SIZE};
use ssdhammer_workload::HammerStyle;

use crate::recon::AttackSite;
use ssdhammer_simkit::json::{Json, ToJson};

/// The host-visible state of one L2P entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingState {
    /// Maps to a physical page.
    Mapped(Ppn),
    /// The unmapped sentinel.
    Unmapped,
    /// The device could not read the entry (ECC-uncorrectable).
    Unreadable,
}

/// One observed L2P redirection (the attack's payoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirection {
    /// The victim device LBA whose mapping changed.
    pub lba: Lba,
    /// Host-visible mapping before hammering.
    pub from: MappingState,
    /// Host-visible mapping after hammering.
    pub to: MappingState,
}

/// Result of one [`run_primitive`] execution.
#[derive(Debug, Clone)]
pub struct PrimitiveOutcome {
    /// DRAM-level hammer statistics.
    pub report: HammerReport,
    /// Every victim LBA whose host-visible mapping changed.
    pub redirections: Vec<Redirection>,
}

impl ToJson for MappingState {
    fn to_json(&self) -> Json {
        match self {
            MappingState::Mapped(ppn) => Json::obj([("mapped", Json::from(ppn.0))]),
            MappingState::Unmapped => Json::str("unmapped"),
            MappingState::Unreadable => Json::str("unreadable"),
        }
    }
}

impl ToJson for Redirection {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lba", Json::from(self.lba.as_u64())),
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
        ])
    }
}

/// Snapshots ground-truth mappings of `lbas` without disturbing the device
/// (diagnostic peek; bypasses ECC).
///
/// # Errors
///
/// Propagates FTL/DRAM errors.
pub fn snapshot_mappings(ftl: &Ftl, lbas: &[Lba]) -> Result<Vec<Option<Ppn>>, FtlError> {
    ftl.peek_mappings(lbas)
}

/// Snapshots the *host-visible* mapping states of `lbas`, reading each entry
/// through the device path (activations + ECC, including scrub-on-correct).
///
/// # Errors
///
/// Propagates only addressing errors; per-entry ECC failures and L2P
/// integrity-plane detections become [`MappingState::Unreadable`] — a loud
/// failure the host observes, not a silent redirection.
pub fn snapshot_host_mappings(ftl: &mut Ftl, lbas: &[Lba]) -> Result<Vec<MappingState>, FtlError> {
    lbas.iter()
        .map(|&l| match ftl.entry_read(l) {
            Ok(Some(ppn)) => Ok(MappingState::Mapped(ppn)),
            Ok(None) => Ok(MappingState::Unmapped),
            Err(FtlError::Dram(_) | FtlError::L2pIntegrity { .. }) => Ok(MappingState::Unreadable),
            Err(e) => Err(e),
        })
        .collect()
}

/// Diffs two mapping snapshots taken over the same `lbas`.
#[must_use]
pub fn diff_mappings(
    lbas: &[Lba],
    before: &[MappingState],
    after: &[MappingState],
) -> Vec<Redirection> {
    lbas.iter()
        .zip(before.iter().zip(after))
        .filter(|(_, (b, a))| b != a)
        .map(|(&lba, (&from, &to))| Redirection { lba, from, to })
        .collect()
}

/// §3.1's setup phase: "the attacker prepares the L2P table by writing data
/// to contiguous LBAs" so the firmware allocates physical pages and L2P
/// entries for them. Writes a recognizable pattern block to every LBA.
///
/// # Errors
///
/// Propagates FTL errors.
pub fn setup_entries(ftl: &mut Ftl, lbas: &[Lba]) -> Result<(), FtlError> {
    let mut block = [0u8; BLOCK_SIZE];
    for &lba in lbas {
        block[..8].copy_from_slice(&lba.as_u64().to_le_bytes());
        ftl.write(lba, &block)?;
    }
    Ok(())
}

/// Builds the request set for hammering `site` in the given style.
///
/// Representative LBAs: one per aggressor row suffices to activate it; the
/// single-sided variant alternates with a far row of the same bank to force
/// row-buffer conflicts. Many-sided patterns spanning several sites are
/// built by [`many_sided_request_set`].
#[must_use]
pub fn request_set_for_site(site: &AttackSite, style: HammerStyle) -> Vec<Lba> {
    let above = site.above_lbas[0];
    let below = site.below_lbas[0];
    // For the far row, reuse the below row's last LBA — same bank, and far
    // enough in practice for the tiny single-sided pattern; callers with
    // stronger needs can build their own set via ssdhammer-workload.
    let far = site.below_lbas.last().copied().unwrap_or(below);
    ssdhammer_workload::hammer_request_set(style, above, below, far, &[])
}

/// Builds a TRRespass-style many-sided request set from several sites of
/// the *same bank*: the aggressor pairs of every site, interleaved, so the
/// per-bank TRR sampler sees more hot rows than it can track.
///
/// # Panics
///
/// Panics if `sites` is empty or the sites span multiple banks.
#[must_use]
pub fn many_sided_request_set(sites: &[AttackSite]) -> Vec<Lba> {
    assert!(!sites.is_empty(), "need at least one site");
    let bank = sites[0].victim.bank;
    assert!(
        sites.iter().all(|s| s.victim.bank == bank),
        "many-sided sites must share a bank"
    );
    sites
        .iter()
        .flat_map(|s| [s.above_lbas[0], s.below_lbas[0]])
        .collect()
}

/// Groups `sites` by bank and returns up to `count` sites from the bank
/// holding the most sites — the raw material for a many-sided pattern.
#[must_use]
pub fn sites_sharing_a_bank(sites: &[AttackSite], count: usize) -> Vec<AttackSite> {
    use std::collections::BTreeMap;
    let mut by_bank: BTreeMap<u32, Vec<&AttackSite>> = BTreeMap::new();
    for s in sites {
        by_bank.entry(s.victim.bank).or_default().push(s);
    }
    let Some((_, best)) = by_bank
        .into_iter()
        .max_by_key(|(bank, v)| (v.len(), u32::MAX - bank))
    else {
        return Vec::new();
    };
    best.into_iter().take(count).cloned().collect()
}

/// Runs one hammer burst against `site` on a live device and reports any
/// host-visible redirections among its victim-row LBAs.
///
/// `request_rate` is the host request rate (requests/second), bounded by
/// the controller's interface rate and any configured rate limit; `duration`
/// is how long to hammer.
///
/// # Errors
///
/// Propagates device errors.
pub fn run_primitive(
    ssd: &mut Ssd,
    site: &AttackSite,
    style: HammerStyle,
    request_rate: f64,
    duration: SimDuration,
) -> Result<PrimitiveOutcome, NvmeError> {
    let pattern = request_set_for_site(site, style);
    run_pattern(ssd, &pattern, &site.victim_lbas, request_rate, duration)
}

/// Runs a many-sided burst across `sites` (same bank), reporting
/// redirections over the union of their victim LBAs.
///
/// # Errors
///
/// Propagates device errors.
///
/// # Panics
///
/// Panics if `sites` is empty or spans multiple banks.
pub fn run_many_sided(
    ssd: &mut Ssd,
    sites: &[AttackSite],
    request_rate: f64,
    duration: SimDuration,
) -> Result<PrimitiveOutcome, NvmeError> {
    let pattern = many_sided_request_set(sites);
    let victims: Vec<Lba> = sites.iter().flat_map(|s| s.victim_lbas.clone()).collect();
    run_pattern(ssd, &pattern, &victims, request_rate, duration)
}

/// Shared burst driver: snapshot → hammer → snapshot → diff.
fn run_pattern(
    ssd: &mut Ssd,
    pattern: &[Lba],
    victims: &[Lba],
    request_rate: f64,
    duration: SimDuration,
) -> Result<PrimitiveOutcome, NvmeError> {
    let tel = ssd.telemetry();
    tel.counter("attack.cycles").incr();
    // Each aggressor pair contributes two rows to the request pattern.
    tel.counter("attack.aggressor_pairs")
        .add((pattern.len() / 2).max(1) as u64);
    let before = snapshot_host_mappings(ssd.ftl_mut(), victims)?;
    let requests = (request_rate * duration.as_secs_f64()).ceil() as u64;
    let report = ssd.hammer_device_reads(pattern, requests, request_rate)?;
    let after = snapshot_host_mappings(ssd.ftl_mut(), victims)?;
    let redirections = diff_mappings(victims, &before, &after);
    tel.counter("attack.useful_flips")
        .add(redirections.len() as u64);
    let now = ssd.clock().now();
    for r in &redirections {
        tel.trace(
            now,
            "attack.redirection",
            format!("lba {} {:?} -> {:?}", r.lba.as_u64(), r.from, r.to),
        );
    }
    Ok(PrimitiveOutcome {
        report,
        redirections,
    })
}

/// Online rowhammerability probing (§4.2): "the attacker could randomly
/// pick rows to rowhammer, but the success rate may be unacceptably low;
/// rowhammerability is determined primarily by variation in the
/// manufacturing process and must be tested online and on the specific
/// device."
///
/// For each candidate site, writes probe entries, hammers briefly at
/// `request_rate`, and keeps the sites whose victim entries actually
/// changed. Returns the confirmed subset, preserving order.
///
/// # Errors
///
/// Propagates device errors.
pub fn probe_sites(
    ssd: &mut Ssd,
    candidates: &[AttackSite],
    request_rate: f64,
    burst: SimDuration,
) -> Result<Vec<AttackSite>, NvmeError> {
    let mut confirmed = Vec::new();
    for site in candidates {
        setup_entries(ssd.ftl_mut(), &site.victim_lbas)?;
        let outcome = run_primitive(ssd, site, HammerStyle::DoubleSided, request_rate, burst)?;
        if !outcome.redirections.is_empty() {
            confirmed.push(site.clone());
        }
    }
    Ok(confirmed)
}

/// Expected simulated time to the first *useful* flip given the per-cycle
/// useful-flip probability and the duration of one attack cycle — the §4.2
/// "about two hours" figure generalized.
///
/// # Panics
///
/// Panics unless `0 < p_useful <= 1`.
#[must_use]
pub fn expected_time_to_success(cycle: SimDuration, p_useful: f64) -> SimDuration {
    assert!(p_useful > 0.0 && p_useful <= 1.0, "bad probability");
    SimDuration::from_secs_f64(cycle.as_secs_f64() / p_useful)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recon::find_attack_sites;
    use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile, TrrConfig};
    use ssdhammer_flash::FlashGeometry;
    use ssdhammer_nvme::SsdConfig;

    fn eager_profile() -> ModuleProfile {
        let mut profile =
            ModuleProfile::from_min_rate("eager", ssdhammer_dram::DramGeneration::Ddr3, 2021, 1);
        profile.hc_first = 1000;
        profile.threshold_spread = 0.0;
        profile.row_vulnerable_prob = 1.0;
        profile.weak_cells_per_row = 8.0;
        profile
    }

    fn vulnerable_ssd() -> Ssd {
        let mut config = SsdConfig::test_small(5);
        config.dram_geometry = DramGeometry::tiny_test();
        config.dram_profile = eager_profile();
        config.dram_mapping = MappingKind::Linear;
        config.flash_geometry = FlashGeometry::mib64();
        Ssd::build(config)
    }

    #[test]
    fn figure1_mechanism_redirects_a_victim_lba() {
        let mut ssd = vulnerable_ssd();
        let sites = find_attack_sites(ssd.ftl(), 4);
        let site = sites.first().expect("a site must exist").clone();
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).unwrap();
        setup_entries(ssd.ftl_mut(), &[site.above_lbas[0], site.below_lbas[0]]).unwrap();
        let outcome = run_primitive(
            &mut ssd,
            &site,
            HammerStyle::DoubleSided,
            5_000_000.0,
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(!outcome.report.flips.is_empty(), "no flips at all");
        assert!(
            !outcome.redirections.is_empty(),
            "a victim LBA should have been redirected"
        );
        let r = outcome.redirections[0];
        assert_ne!(r.from, r.to);
    }

    #[test]
    fn below_threshold_rate_produces_no_redirections() {
        let mut ssd = vulnerable_ssd();
        let site = find_attack_sites(ssd.ftl(), 1).pop().unwrap();
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).unwrap();
        let outcome = run_primitive(
            &mut ssd,
            &site,
            HammerStyle::DoubleSided,
            10_000.0, // far below the ~15.6K acts/window needed
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(outcome.redirections.is_empty());
    }

    #[test]
    fn controller_rate_limit_bounds_the_hammer() {
        let mut config = SsdConfig::test_small(5);
        config.dram_geometry = DramGeometry::tiny_test();
        config.dram_profile = eager_profile();
        config.dram_mapping = MappingKind::Linear;
        config.flash_geometry = FlashGeometry::mib64();
        config.controller.rate_limit_iops = Some(10_000.0);
        let mut ssd = Ssd::build(config);
        let site = find_attack_sites(ssd.ftl(), 1).pop().unwrap();
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).unwrap();
        // Ask for 5M/s; the limiter must clamp to 10K/s — below threshold.
        let outcome = run_primitive(
            &mut ssd,
            &site,
            HammerStyle::DoubleSided,
            5_000_000.0,
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(outcome.report.achieved_rate <= 10_500.0);
        assert!(outcome.redirections.is_empty());
    }

    #[test]
    fn ecc_hides_redirections_from_the_host() {
        let mut config = SsdConfig::test_small(5);
        config.dram_geometry = DramGeometry::tiny_test();
        config.dram_profile = eager_profile();
        config.dram_mapping = MappingKind::Linear;
        config.flash_geometry = FlashGeometry::mib64();
        config.ecc = Some(ssdhammer_dram::EccConfig::default());
        let mut ssd = Ssd::build(config);
        let site = find_attack_sites(ssd.ftl(), 1).pop().unwrap();
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).unwrap();
        let outcome = run_primitive(
            &mut ssd,
            &site,
            HammerStyle::DoubleSided,
            5_000_000.0,
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(
            !outcome.report.flips.is_empty(),
            "cells still flip physically under ECC"
        );
        assert!(
            outcome
                .redirections
                .iter()
                .all(|r| r.to == MappingState::Unreadable || r.from == r.to),
            "single-bit flips must be corrected (or at worst detected): {:?}",
            outcome.redirections
        );
    }

    #[test]
    fn many_sided_defeats_trr_where_double_sided_fails() {
        let build = || {
            let mut config = SsdConfig::test_small(5);
            config.dram_geometry = DramGeometry::tiny_test();
            config.dram_profile = eager_profile();
            config.dram_mapping = MappingKind::Linear;
            config.flash_geometry = FlashGeometry::mib64();
            config.trr = Some(TrrConfig {
                sampler_size: 4,
                detection_threshold: 100,
            });
            Ssd::build(config)
        };
        // Double-sided: fully tracked, no redirections.
        let mut ssd = build();
        let sites = find_attack_sites(ssd.ftl(), 64);
        let site = sites[0].clone();
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).unwrap();
        let ds = run_primitive(
            &mut ssd,
            &site,
            HammerStyle::DoubleSided,
            10_000_000.0,
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(ds.redirections.is_empty(), "TRR should stop double-sided");

        // Many-sided over 9 same-bank sites: sampler overwhelmed.
        let mut ssd = build();
        let sites = find_attack_sites(ssd.ftl(), 256);
        let group = sites_sharing_a_bank(&sites, 9);
        assert!(group.len() >= 6, "need several same-bank sites");
        for s in &group {
            setup_entries(ssd.ftl_mut(), &s.victim_lbas).unwrap();
        }
        let ms = run_many_sided(
            &mut ssd,
            &group,
            20_000_000.0,
            SimDuration::from_millis(400),
        )
        .unwrap();
        assert!(
            !ms.redirections.is_empty(),
            "many-sided should escape the sampler: {:?}",
            ms.report.flips.len()
        );
    }

    #[test]
    fn one_location_fails_on_open_page_device() {
        let mut ssd = vulnerable_ssd();
        let site = find_attack_sites(ssd.ftl(), 1).pop().unwrap();
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).unwrap();
        let outcome = run_primitive(
            &mut ssd,
            &site,
            HammerStyle::OneLocation,
            5_000_000.0,
            SimDuration::from_millis(200),
        )
        .unwrap();
        assert!(
            outcome.redirections.is_empty(),
            "open-page row buffer should absorb one-location hammering"
        );
    }

    #[test]
    fn probing_confirms_hammerable_sites_online() {
        // A device where only some rows carry weak cells: probing must keep
        // a subset (the flippable ones, given their stored data) and drop
        // the rest.
        let mut config = SsdConfig::test_small(5);
        config.dram_geometry = DramGeometry::tiny_test();
        let mut profile = eager_profile();
        profile.row_vulnerable_prob = 0.4;
        config.dram_profile = profile;
        config.dram_mapping = MappingKind::Linear;
        config.flash_geometry = FlashGeometry::mib64();
        let mut ssd = Ssd::build(config);
        let candidates = find_attack_sites(ssd.ftl(), 16);
        assert!(!candidates.is_empty());
        let confirmed = probe_sites(
            &mut ssd,
            &candidates,
            5_000_000.0,
            SimDuration::from_millis(100),
        )
        .unwrap();
        assert!(!confirmed.is_empty(), "some site must confirm");
        for c in &confirmed {
            assert!(candidates.contains(c));
        }

        // An invulnerable device confirms nothing.
        let mut config = SsdConfig::test_small(5);
        config.dram_geometry = DramGeometry::tiny_test();
        config.dram_mapping = MappingKind::Linear;
        config.flash_geometry = FlashGeometry::mib64();
        let mut clean = Ssd::build(config);
        // Reuse candidate coordinates; they exist on the clean device too
        // (recon needs weak cells, so find none — probe the raw triples by
        // constructing sites from the vulnerable device's list).
        let confirmed = probe_sites(
            &mut clean,
            &candidates,
            5_000_000.0,
            SimDuration::from_millis(100),
        )
        .unwrap();
        assert!(confirmed.is_empty());
    }

    #[test]
    fn diff_detects_only_changes() {
        let lbas = [Lba(1), Lba(2), Lba(3)];
        let before = [
            MappingState::Mapped(Ppn(10)),
            MappingState::Mapped(Ppn(20)),
            MappingState::Unmapped,
        ];
        let after = [
            MappingState::Mapped(Ppn(10)),
            MappingState::Mapped(Ppn(99)),
            MappingState::Unmapped,
        ];
        let d = diff_mappings(&lbas, &before, &after);
        assert_eq!(
            d,
            vec![Redirection {
                lba: Lba(2),
                from: MappingState::Mapped(Ppn(20)),
                to: MappingState::Mapped(Ppn(99)),
            }]
        );
    }

    #[test]
    fn expected_time_scales_inversely_with_probability() {
        let cycle = SimDuration::from_secs(600);
        let t7 = expected_time_to_success(cycle, 0.07);
        let t14 = expected_time_to_success(cycle, 0.14);
        assert!((t7.as_secs_f64() - 8571.4).abs() < 1.0);
        assert!((t7.as_secs_f64() / t14.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn setup_writes_recognizable_blocks() {
        let mut ssd = vulnerable_ssd();
        setup_entries(ssd.ftl_mut(), &[Lba(5), Lba(6)]).unwrap();
        let mut buf = [0u8; BLOCK_SIZE];
        ssd.ftl_mut().read(Lba(6), &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf[..8].try_into().unwrap()), 6);
    }
}
