//! Filesystem spraying and bitflip scanning — the §4.2 attack stages run by
//! the unprivileged process inside the victim VM.
//!
//! Each spray file is created "with a hole of 12 blocks (to avoid storing
//! direct data blocks)" and then "a single data block mapped using an
//! indirect block. The data blocks in turn contain a *maliciously formed
//! indirect block* pointing at target LBAs of potentially privileged
//! content."

use ssdhammer_fs::{AddressingMode, Credentials, FileSystem, FsBlock, FsError, FsResult, Ino};
use ssdhammer_simkit::{BlockDevice, BLOCK_SIZE};

/// File-logical index of the sprayed data block (first block behind the
/// indirect pointer, after the 12-direct-block hole).
pub const SPRAY_BLOCK_INDEX: u32 = 12;

/// Builds a maliciously formed indirect block: a pointer array whose slot
/// `i` targets `targets[i]`. When the FTL later redirects a victim file's
/// *real* indirect block to a block holding this payload, reading that
/// file's block `12 + i` returns the content of filesystem block
/// `targets[i]` — regardless of who owns it.
#[must_use]
pub fn malicious_indirect_payload(targets: &[FsBlock]) -> [u8; BLOCK_SIZE] {
    let mut block = [0u8; BLOCK_SIZE];
    for (i, t) in targets.iter().take(BLOCK_SIZE / 4).enumerate() {
        block[i * 4..i * 4 + 4].copy_from_slice(&t.to_le_bytes());
    }
    block
}

/// Plan for one spraying pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprayPlan {
    /// Directory to spray into (must exist and be writable by the actor).
    pub dir: String,
    /// File-name prefix.
    pub prefix: String,
    /// Number of spray files to create (each consumes two data blocks).
    pub count: u32,
    /// Filesystem blocks of potentially privileged content the malicious
    /// indirect blocks should point at.
    pub targets: Vec<FsBlock>,
}

/// One sprayed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprayedFile {
    /// Absolute path.
    pub path: String,
    /// Inode number.
    pub ino: Ino,
}

/// Result of a spraying pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SprayReport {
    /// Every file created.
    pub files: Vec<SprayedFile>,
    /// The payload every sprayed data block holds.
    pub payload: Box<[u8; BLOCK_SIZE]>,
    /// Files that could not be created because space ran out.
    pub exhausted_at: Option<u32>,
}

impl SprayReport {
    /// Blocks consumed on the filesystem (one indirect + one data block per
    /// file).
    #[must_use]
    pub fn blocks_consumed(&self) -> u64 {
        self.files.len() as u64 * 2
    }
}

/// Sprays the filesystem per `plan`. Stops early (recording
/// `exhausted_at`) when space runs out — mirroring the paper's experience of
/// the FTL library capping spraying at 5 % of the partition.
///
/// # Errors
///
/// Path or permission errors; running out of space is *not* an error (it is
/// recorded in the report).
pub fn spray_filesystem<S: BlockDevice>(
    fs: &mut FileSystem<S>,
    cred: Credentials,
    plan: &SprayPlan,
) -> FsResult<SprayReport> {
    let payload = malicious_indirect_payload(&plan.targets);
    let mut files = Vec::with_capacity(plan.count as usize);
    let mut exhausted_at = None;
    for i in 0..plan.count {
        let path = format!("{}/{}{i}", plan.dir.trim_end_matches('/'), plan.prefix);
        let ino = match fs.create(&path, cred, 0o644, AddressingMode::Indirect) {
            Ok(ino) => ino,
            Err(FsError::NoSpace) => {
                exhausted_at = Some(i);
                break;
            }
            Err(e) => return Err(e),
        };
        match fs.write_file_block(ino, cred, SPRAY_BLOCK_INDEX, &payload) {
            Ok(()) => files.push(SprayedFile { path, ino }),
            Err(FsError::NoSpace) => {
                // The partially-written file must not survive the spray:
                // an unlink failure here is a real filesystem fault, not
                // part of running out of space, so it propagates.
                fs.unlink(&path, cred)?;
                exhausted_at = Some(i);
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(SprayReport {
        files,
        payload: Box::new(payload),
        exhausted_at,
    })
}

/// A detected content change in a sprayed file — a bitflip redirected its
/// indirect block, and the observed data is the content of some other
/// (potentially privileged) filesystem block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakHit {
    /// Which sprayed file changed.
    pub file: SprayedFile,
    /// What its block-12 read returned instead of the payload.
    pub observed: Box<[u8; BLOCK_SIZE]>,
}

/// §4.2's scan stage: "the attacker process in the victim VM iterates over
/// files created in the spraying stage to detect content modifications due
/// to bitflips in the L2P table."
///
/// Unreadable files (e.g. wild redirections that now fail) are skipped — the
/// attacker just moves on.
///
/// # Errors
///
/// Only unrecoverable I/O failures.
pub fn scan_for_leaks<S: BlockDevice>(
    fs: &mut FileSystem<S>,
    cred: Credentials,
    report: &SprayReport,
) -> FsResult<Vec<LeakHit>> {
    let mut hits = Vec::new();
    for file in &report.files {
        let observed = match fs.read_file_block(file.ino, cred, SPRAY_BLOCK_INDEX) {
            Ok(data) => data,
            // Any per-file failure means the chain is corrupted in a way
            // that is detectable but not useful — L2P flips can land on
            // inode-table or indirect blocks and make the file unreadable
            // (or even re-type its inode). The attacker just moves on.
            Err(_) => continue,
        };
        if observed != *report.payload {
            hits.push(LeakHit {
                file: file.clone(),
                observed: Box::new(observed),
            });
        }
    }
    Ok(hits)
}

/// After a hit, the attacker dumps more privileged blocks through the same
/// corrupted file: block `12 + i` of the victim file now resolves through
/// the malicious payload's pointer slot `i`.
///
/// # Errors
///
/// Propagates read failures.
pub fn dump_through_hit<S: BlockDevice>(
    fs: &mut FileSystem<S>,
    cred: Credentials,
    hit: &LeakHit,
    slot: u32,
) -> FsResult<[u8; BLOCK_SIZE]> {
    fs.read_file_block(hit.file.ino, cred, SPRAY_BLOCK_INDEX + slot)
}

/// Removes all sprayed files, so the attacker can "re-spray the system with
/// new files, forcing the FTL to re-shuffle all address mappings" (§4.2).
///
/// Per-file failures (including corruption-induced ones) are ignored; the
/// count of files that could not be removed is returned.
///
/// # Errors
///
/// Never fails today; the `Result` is kept for future device-level errors.
pub fn clear_spray<S: BlockDevice>(
    fs: &mut FileSystem<S>,
    cred: Credentials,
    report: &SprayReport,
) -> FsResult<usize> {
    let mut stuck = 0;
    for file in &report.files {
        match fs.unlink(&file.path, cred) {
            Ok(()) | Err(FsError::NotFound) => {}
            Err(_) => stuck += 1,
        }
    }
    Ok(stuck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdhammer_simkit::RamDisk;

    const ROOT: Credentials = Credentials::root();
    const ATTACKER: Credentials = Credentials::user(1000);

    fn fs_with_dir() -> FileSystem<RamDisk> {
        let mut fs = FileSystem::format(RamDisk::new(4096)).unwrap();
        fs.mkdir("/tmp", ROOT, 0o777).unwrap();
        fs
    }

    #[test]
    fn payload_encodes_targets_in_order() {
        let p = malicious_indirect_payload(&[100, 200, 300]);
        assert_eq!(u32::from_le_bytes(p[0..4].try_into().unwrap()), 100);
        assert_eq!(u32::from_le_bytes(p[8..12].try_into().unwrap()), 300);
        assert!(p[12..].iter().all(|&b| b == 0));
    }

    #[test]
    fn spray_creates_holey_indirect_files() {
        let mut fs = fs_with_dir();
        let plan = SprayPlan {
            dir: "/tmp".into(),
            prefix: "sp".into(),
            count: 20,
            targets: vec![500],
        };
        let report = spray_filesystem(&mut fs, ATTACKER, &plan).unwrap();
        assert_eq!(report.files.len(), 20);
        assert_eq!(report.exhausted_at, None);
        assert_eq!(report.blocks_consumed(), 40);
        let st = fs.stat(report.files[0].ino).unwrap();
        assert_eq!(st.addressing, AddressingMode::Indirect);
        // Blocks 0..12 are holes.
        let hole = fs
            .read_file_block(report.files[0].ino, ATTACKER, 0)
            .unwrap();
        assert_eq!(hole, [0u8; BLOCK_SIZE]);
    }

    #[test]
    fn spray_stops_gracefully_when_full() {
        let mut fs = FileSystem::format(RamDisk::new(128)).unwrap();
        fs.mkdir("/tmp", ROOT, 0o777).unwrap();
        let plan = SprayPlan {
            dir: "/tmp".into(),
            prefix: "sp".into(),
            count: 10_000,
            targets: vec![5],
        };
        let report = spray_filesystem(&mut fs, ATTACKER, &plan).unwrap();
        assert!(report.exhausted_at.is_some());
        assert!(!report.files.is_empty());
    }

    #[test]
    fn scan_is_quiet_without_flips() {
        let mut fs = fs_with_dir();
        let plan = SprayPlan {
            dir: "/tmp".into(),
            prefix: "sp".into(),
            count: 10,
            targets: vec![7],
        };
        let report = spray_filesystem(&mut fs, ATTACKER, &plan).unwrap();
        assert!(scan_for_leaks(&mut fs, ATTACKER, &report)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scan_detects_redirected_indirect_block_and_leaks() {
        use ssdhammer_fs::InodeMap;
        use ssdhammer_simkit::Lba;

        let mut fs = fs_with_dir();
        // Privileged content the attacker cannot read directly.
        let secret = fs
            .create("/secret", ROOT, 0o600, AddressingMode::Extents)
            .unwrap();
        fs.write_file_block(secret, ROOT, 0, &[0x5E; BLOCK_SIZE])
            .unwrap();
        assert_eq!(
            fs.read_file_block(secret, ATTACKER, 0).unwrap_err(),
            FsError::PermissionDenied
        );
        // Locate the secret's filesystem block via the (root-visible) map.
        let s_inode = fs.read_inode(secret).unwrap();
        let InodeMap::Extents { inline, .. } = &s_inode.map else {
            panic!("secret uses extents");
        };
        let secret_block = inline[0].start;

        // Spray with payloads targeting the secret's block.
        let plan = SprayPlan {
            dir: "/tmp".into(),
            prefix: "sp".into(),
            count: 8,
            targets: vec![secret_block],
        };
        let report = spray_filesystem(&mut fs, ATTACKER, &plan).unwrap();

        // Simulate the useful L2P flip at the device level: the victim
        // file's indirect-block LBA now returns a malicious payload.
        let victim = &report.files[3];
        let v_inode = fs.read_inode(victim.ino).unwrap();
        let InodeMap::Indirect { single, .. } = v_inode.map else {
            panic!("sprayed file uses indirect addressing");
        };
        fs.device_mut()
            .write(Lba(u64::from(single)), report.payload.as_ref())
            .unwrap();

        // Scan finds exactly that file, and the observed content *is* the
        // privileged data (slot 0 of the malicious payload -> secret block).
        let hits = scan_for_leaks(&mut fs, ATTACKER, &report).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].file.path, victim.path);
        assert_eq!(hits[0].observed.as_ref(), &[0x5E; BLOCK_SIZE]);
        // And the attacker can keep dumping through the same hit.
        let again = dump_through_hit(&mut fs, ATTACKER, &hits[0], 0).unwrap();
        assert_eq!(again, [0x5E; BLOCK_SIZE]);
    }

    #[test]
    fn clear_spray_removes_files() {
        let mut fs = fs_with_dir();
        let plan = SprayPlan {
            dir: "/tmp".into(),
            prefix: "sp".into(),
            count: 5,
            targets: vec![9],
        };
        let report = spray_filesystem(&mut fs, ATTACKER, &plan).unwrap();
        clear_spray(&mut fs, ATTACKER, &report).unwrap();
        assert!(fs.readdir("/tmp", ATTACKER).unwrap().is_empty());
    }
}
