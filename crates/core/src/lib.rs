//! # ssdhammer-core
//!
//! The primary contribution of *Rowhammering Storage Devices* (HotStorage
//! '21), as a library: everything an unprivileged host workload needs to
//! rowhammer an SSD's FTL *through the intended I/O interface* — on the
//! simulated stack built by the sibling crates.
//!
//! The attack pipeline (§3–§4):
//!
//! 1. **Recon** ([`recon`]): enumerate aggressor/victim DRAM-row triples of
//!    the L2P table from offline model knowledge, including the
//!    cross-partition triples that swizzled memory-controller mappings
//!    create (§4.2's "32 sets of three vulnerable rows").
//! 2. **Primitive** ([`attack`]): prepare L2P entries with sequential
//!    writes, issue the alternating read workload of Figure 1, and detect
//!    the resulting mapping redirections.
//! 3. **Spray & scan** ([`spray`]): fill the victim filesystem with
//!    hole-punched indirect-addressed files whose lone data blocks are
//!    maliciously formed indirect blocks; after hammering, scan for content
//!    changes and dump privileged blocks through the corrupted pointer
//!    chain (Figure 3).
//! 4. **Escalation** ([`polyglot`]): §3.2's *write-something-somewhere*
//!    primitive via blocks simultaneously valid as pointer arrays, file
//!    data, and (toy) executables.
//! 5. **Probability** ([`probability`]): the §4.3 closed-form success model
//!    (7 % per cycle, >50 % after 10 cycles under the paper's parameters)
//!    plus a Monte-Carlo cross-check.
//!
//! # Examples
//!
//! The §4.3 arithmetic:
//!
//! ```
//! use ssdhammer_core::AttackParams;
//!
//! let params = AttackParams::paper_example(1 << 18);
//! let p = params.useful_flip_probability();
//! assert!((p - 0.07).abs() < 0.005);           // ~7% per cycle
//! assert!(params.cumulative_success(10) > 0.5); // >50% after 10 cycles
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod polyglot;
pub mod probability;
pub mod recon;
pub mod spray;

pub use attack::{
    diff_mappings, expected_time_to_success, make_hammerer, make_placement, make_victim,
    pattern_names, placement_names, probe_sites, setup_entries, snapshot_host_mappings,
    snapshot_mappings, victim_names, AttackError, AttackOutcome, AttackPipeline, BadBlockTable,
    ChangeKind, CrossBank, HammerPlan, Hammerer, JournalCache, L2pEntries, ManySided, MappingState,
    Observation, OneLocation, OneSided, Placement, Redirection, RowPress, SameBank, TwoSided,
    Victim, VictimChange, WearCounters,
};
pub use polyglot::{executable_payload, is_valid_executable, polyglot_block};
pub use probability::AttackParams;
pub use recon::{
    cross_partition_sites, find_attack_sites, AttackSite, CrossPartitionSite, LbaRange,
};
pub use spray::{
    clear_spray, dump_through_hit, malicious_indirect_payload, scan_for_leaks, spray_filesystem,
    LeakHit, SprayPlan, SprayReport, SprayedFile, SPRAY_BLOCK_INDEX,
};
