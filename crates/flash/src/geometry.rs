//! NAND flash organization and addressing.

use core::fmt;

use ssdhammer_simkit::ByteSize;

/// A global physical page number across the whole flash array.
///
/// Distinct from [`ssdhammer_simkit::Lba`]: the FTL's entire job — and the
/// attack's entire leverage — is the mapping between the two.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppn(pub u64);

impl Ppn {
    /// The raw index.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPN#{}", self.0)
    }
}

impl From<u64> for Ppn {
    fn from(v: u64) -> Self {
        Ppn(v)
    }
}

/// A global erase-block index.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The raw index.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BLK#{}", self.0)
    }
}

/// Physical organization of the NAND array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Independent channels (parallel buses).
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Data bytes per page (4 KiB throughout the workspace).
    pub page_bytes: u32,
    /// Out-of-band (spare) bytes per page, used by the FTL for reverse
    /// mapping metadata.
    pub oob_bytes: u32,
}

impl FlashGeometry {
    /// A 1 GiB SSD as in the paper's prototype (§4.1): 4 channels × 1 die ×
    /// 1 plane × 64 blocks × 1024 pages × 4 KiB = 1 GiB.
    #[must_use]
    pub fn gib1() -> Self {
        FlashGeometry {
            channels: 4,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 1024,
            page_bytes: 4096,
            oob_bytes: 32,
        }
    }

    /// A small array for tests: 2 channels × 1 die × 1 plane × 8 blocks ×
    /// 64 pages × 4 KiB = 4 MiB.
    #[must_use]
    pub fn tiny_test() -> Self {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 64,
            page_bytes: 4096,
            oob_bytes: 32,
        }
    }

    /// A mid-size array (64 MiB) for integration tests: 4 channels × 16
    /// blocks × 256 pages.
    #[must_use]
    pub fn mib64() -> Self {
        FlashGeometry {
            channels: 4,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 16,
            pages_per_block: 256,
            page_bytes: 4096,
            oob_bytes: 32,
        }
    }

    /// Total number of erase blocks.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.dies_per_channel)
            * u64::from(self.planes_per_die)
            * u64::from(self.blocks_per_plane)
    }

    /// Total number of pages.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * u64::from(self.pages_per_block)
    }

    /// Total data capacity (excluding OOB).
    #[must_use]
    pub fn total_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.total_pages() * u64::from(self.page_bytes))
    }

    /// The block containing `ppn`.
    #[must_use]
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        BlockId(ppn.as_u64() / u64::from(self.pages_per_block))
    }

    /// Page index of `ppn` within its block.
    #[must_use]
    pub fn page_in_block(&self, ppn: Ppn) -> u32 {
        (ppn.as_u64() % u64::from(self.pages_per_block)) as u32
    }

    /// First page of `block`.
    #[must_use]
    pub fn first_page(&self, block: BlockId) -> Ppn {
        Ppn(block.as_u64() * u64::from(self.pages_per_block))
    }

    /// The channel serving `block`. Blocks stripe across channels round-robin
    /// so sequential block allocation exploits channel parallelism.
    #[must_use]
    pub fn channel_of(&self, block: BlockId) -> u32 {
        (block.as_u64() % u64::from(self.channels)) as u32
    }

    /// Validates all dimensions are non-zero.
    ///
    /// # Errors
    ///
    /// Returns the name of the first zero dimension.
    pub fn validate(&self) -> Result<(), String> {
        let dims = [
            ("channels", self.channels),
            ("dies_per_channel", self.dies_per_channel),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_bytes", self.page_bytes),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
        }
        Ok(())
    }
}

/// NAND operation latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Page read (tR) in nanoseconds.
    pub t_read_ns: u64,
    /// Page program (tPROG) in nanoseconds.
    pub t_program_ns: u64,
    /// Block erase (tBERS) in nanoseconds.
    pub t_erase_ns: u64,
    /// Per-page bus transfer time in nanoseconds.
    pub t_xfer_ns: u64,
}

impl Default for FlashTiming {
    fn default() -> Self {
        // Datasheet-ish TLC NAND numbers.
        FlashTiming {
            t_read_ns: 50_000,
            t_program_ns: 600_000,
            t_erase_ns: 3_000_000,
            t_xfer_ns: 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib1_capacity() {
        let g = FlashGeometry::gib1();
        assert_eq!(g.total_bytes(), ByteSize::gib(1));
        assert_eq!(g.total_blocks(), 256);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn ppn_block_decomposition() {
        let g = FlashGeometry::tiny_test();
        let ppn = Ppn(64 * 3 + 17);
        assert_eq!(g.block_of(ppn), BlockId(3));
        assert_eq!(g.page_in_block(ppn), 17);
        assert_eq!(g.first_page(BlockId(3)), Ppn(192));
    }

    #[test]
    fn channels_stripe_blocks() {
        let g = FlashGeometry::tiny_test();
        assert_eq!(g.channel_of(BlockId(0)), 0);
        assert_eq!(g.channel_of(BlockId(1)), 1);
        assert_eq!(g.channel_of(BlockId(2)), 0);
    }

    #[test]
    fn validate_catches_zero() {
        let mut g = FlashGeometry::tiny_test();
        g.pages_per_block = 0;
        assert!(g.validate().unwrap_err().contains("pages_per_block"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ppn(12).to_string(), "PPN#12");
        assert_eq!(BlockId(3).to_string(), "BLK#3");
    }
}
