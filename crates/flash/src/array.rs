//! The NAND array simulator: erase-before-program semantics, in-order page
//! programming, per-channel pipelining, wear, and bad blocks.

use ssdhammer_simkit::faultplane::FaultPlane;
use ssdhammer_simkit::rng::{derive_seed, seeded, Rng};
use ssdhammer_simkit::telemetry::{CounterHandle, Telemetry};
use ssdhammer_simkit::{SimClock, SimDuration, SimTime};

use crate::geometry::{BlockId, FlashGeometry, FlashTiming, Ppn};

/// Errors surfaced by flash operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// Page or block index beyond the array.
    OutOfRange,
    /// Attempt to program a page that is not in the erased state (flash
    /// cannot overwrite in place — the physical constraint that forces FTLs
    /// to exist, §2.1).
    NotErased {
        /// The page that was already programmed.
        ppn: Ppn,
    },
    /// Pages within a block must be programmed in order (NAND constraint).
    OutOfOrderProgram {
        /// The out-of-order target.
        ppn: Ppn,
        /// The page index the block expects next.
        expected: u32,
    },
    /// The block is factory-bad or has worn out.
    BadBlock {
        /// The unusable block.
        block: BlockId,
    },
    /// Buffer length does not match the page or OOB size.
    BadBufferLen {
        /// Supplied length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// A read failed at the media level (injected via the fault plane).
    /// `bits` is the deterministic count of flipped bits in the worst ECC
    /// word, which the FTL's recovery ladder feeds into
    /// `dram::ecc::EccOutcome::classify` after retries are exhausted.
    ReadFailed {
        /// The page whose read failed.
        ppn: Ppn,
        /// Flipped bits in the worst ECC word (1 = correctable, 2 =
        /// detectable, 3+ = silent corruption).
        bits: u32,
    },
    /// A program operation failed (injected via the fault plane). The
    /// target page is *burned*: it consumed its in-order slot but holds no
    /// data, so the FTL must re-issue the write elsewhere.
    ProgramFailed {
        /// The page whose program failed.
        ppn: Ppn,
    },
    /// An erase operation failed (injected via the fault plane). The block
    /// is marked grown-bad and must be retired by the FTL.
    EraseFailed {
        /// The block whose erase failed.
        block: BlockId,
    },
}

impl core::fmt::Display for FlashError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlashError::OutOfRange => write!(f, "flash address out of range"),
            FlashError::NotErased { ppn } => write!(f, "{ppn} is not erased"),
            FlashError::OutOfOrderProgram { ppn, expected } => {
                write!(
                    f,
                    "{ppn} programmed out of order (expected page {expected})"
                )
            }
            FlashError::BadBlock { block } => write!(f, "{block} is bad"),
            FlashError::BadBufferLen { got, expected } => {
                write!(f, "buffer length {got}, expected {expected}")
            }
            FlashError::ReadFailed { ppn, bits } => {
                write!(f, "media read of {ppn} failed ({bits} flipped bits)")
            }
            FlashError::ProgramFailed { ppn } => write!(f, "program of {ppn} failed"),
            FlashError::EraseFailed { block } => write!(f, "erase of {block} failed"),
        }
    }
}

impl std::error::Error for FlashError {}

/// Point-in-time view of the array's counters in the shared
/// [`Telemetry`] registry (metric names `flash.*`).
#[derive(Debug, Default, Clone)]
pub struct FlashTelemetry {
    /// Page reads.
    pub reads: u64,
    /// Page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// Erases rejected because the block wore out.
    pub wear_failures: u64,
    /// Bits corrupted in returned data due to read disturb.
    pub read_disturb_errors: u64,
    /// Blocks that went bad after manufacturing (wear-out, erase failures,
    /// or FTL retirement via [`FlashArray::mark_bad`]).
    pub grown_bad: u64,
}

/// Handles into the shared registry, resolved once at bind time.
#[derive(Debug, Clone)]
struct FlashHandles {
    registry: Telemetry,
    reads: CounterHandle,
    programs: CounterHandle,
    erases: CounterHandle,
    wear_failures: CounterHandle,
    read_disturb_errors: CounterHandle,
    grown_bad: CounterHandle,
}

impl FlashHandles {
    fn bind(registry: Telemetry) -> Self {
        FlashHandles {
            reads: registry.counter("flash.reads"),
            programs: registry.counter("flash.programs"),
            erases: registry.counter("flash.erases"),
            wear_failures: registry.counter("flash.wear_failures"),
            read_disturb_errors: registry.counter("flash.read_disturb_errors"),
            grown_bad: registry.counter("flash.grown_bad"),
            registry,
        }
    }
}

#[derive(Debug)]
struct PageData {
    data: Box<[u8]>,
    oob: Box<[u8]>,
}

#[derive(Debug, Clone, Default)]
struct BlockState {
    next_page: u32,
    pe_cycles: u32,
    reads_since_erase: u64,
    bad: bool,
}

/// The simulated NAND array.
///
/// Operation latencies do not block the global clock; instead each operation
/// is scheduled on its block's channel pipeline and returns the simulated
/// *completion time*, so callers (the FTL / NVMe layer) can model device
/// parallelism and queueing honestly.
///
/// # Examples
///
/// ```
/// use ssdhammer_flash::{FlashArray, FlashGeometry, Ppn};
/// use ssdhammer_simkit::SimClock;
///
/// # fn main() -> Result<(), ssdhammer_flash::FlashError> {
/// let mut nand = FlashArray::new(FlashGeometry::tiny_test(), SimClock::new(), 1);
/// let page = vec![7u8; 4096];
/// nand.program_page(Ppn(0), &page, b"meta")?;
/// let (out, _done) = nand.read_page(Ppn(0))?;
/// assert_eq!(out.as_ref(), page.as_slice());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    clock: SimClock,
    /// Programmed-page store, directly indexed by PPN (`None` = erased).
    /// A flat slot table rather than an ordered map: page lookup is the
    /// single hottest operation in the simulator and O(1) indexing beats a
    /// tree walk over hundreds of thousands of programmed pages.
    pages: Vec<Option<PageData>>,
    blocks: Vec<BlockState>,
    channel_busy_until: Vec<SimTime>,
    tel: FlashHandles,
    /// Program/erase cycles a block survives before wearing out.
    max_pe_cycles: u32,
    /// Reads a block tolerates between erases before read disturb starts
    /// corrupting returned data.
    read_disturb_limit: u64,
    seed: u64,
    /// Fault-injection decisions for `flash.*` sites. Disabled by default.
    fault_plane: FaultPlane,
}

impl FlashArray {
    /// Creates an array with default timings and ~0.2% factory bad blocks
    /// drawn deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    #[must_use]
    pub fn new(geometry: FlashGeometry, clock: SimClock, seed: u64) -> Self {
        Self::with_timing(geometry, FlashTiming::default(), clock, seed)
    }

    /// Creates an array with explicit timings.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    #[must_use]
    pub fn with_timing(
        geometry: FlashGeometry,
        timing: FlashTiming,
        clock: SimClock,
        seed: u64,
    ) -> Self {
        geometry.validate().expect("invalid flash geometry"); // lint:allow(P1) -- documented `# Panics` constructor contract
        let total_blocks = geometry.total_blocks() as usize;
        let mut blocks = vec![BlockState::default(); total_blocks];
        let mut rng = seeded(derive_seed(seed, "factory-bad-blocks", 0));
        for b in blocks.iter_mut() {
            if rng.gen::<f64>() < 0.002 {
                b.bad = true;
            }
        }
        let mut pages = Vec::new();
        pages.resize_with(geometry.total_pages() as usize, || None);
        FlashArray {
            channel_busy_until: vec![SimTime::ZERO; geometry.channels as usize],
            geometry,
            timing,
            clock,
            pages,
            blocks,
            tel: FlashHandles::bind(Telemetry::new()),
            max_pe_cycles: 3000,
            read_disturb_limit: 100_000,
            seed,
            fault_plane: FaultPlane::disabled(),
        }
    }

    /// Installs a fault plane; `flash.read_fail`, `flash.program_fail`,
    /// and `flash.erase_fail` sites are consulted on the corresponding
    /// operations.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.fault_plane = plane;
    }

    /// The installed fault plane (a disabled one if none was set).
    #[must_use]
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.fault_plane
    }

    /// The array geometry.
    #[must_use]
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Point-in-time view of this array's counters.
    #[must_use]
    pub fn telemetry(&self) -> FlashTelemetry {
        FlashTelemetry {
            reads: self.tel.reads.get(),
            programs: self.tel.programs.get(),
            erases: self.tel.erases.get(),
            wear_failures: self.tel.wear_failures.get(),
            read_disturb_errors: self.tel.read_disturb_errors.get(),
            grown_bad: self.tel.grown_bad.get(),
        }
    }

    /// The shared registry this array records into.
    #[must_use]
    pub fn shared_telemetry(&self) -> Telemetry {
        self.tel.registry.clone()
    }

    /// Rebinds this array's metrics onto `telemetry` (e.g. an [`Ssd`]'s one
    /// shared registry). Counts recorded before the switch stay in the old
    /// registry, so attach before use.
    ///
    /// [`Ssd`]: https://docs.rs/ssdhammer-nvme
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tel = FlashHandles::bind(telemetry.clone());
    }

    /// Program/erase endurance per block.
    #[must_use]
    pub fn max_pe_cycles(&self) -> u32 {
        self.max_pe_cycles
    }

    /// Overrides the endurance limit (for wear tests).
    pub fn set_max_pe_cycles(&mut self, cycles: u32) {
        self.max_pe_cycles = cycles;
    }

    /// Reads a block tolerates between erases before read disturb corrupts
    /// returned data.
    #[must_use]
    pub fn read_disturb_limit(&self) -> u64 {
        self.read_disturb_limit
    }

    /// Overrides the read-disturb tolerance (for tests and FTL tuning).
    pub fn set_read_disturb_limit(&mut self, limit: u64) {
        assert!(limit > 0, "limit must be positive");
        self.read_disturb_limit = limit;
    }

    /// Reads issued to `block` since its last erase.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] for invalid blocks.
    pub fn reads_since_erase(&self, block: BlockId) -> Result<u64, FlashError> {
        self.block_state(block).map(|b| b.reads_since_erase)
    }

    /// P/E cycles consumed by `block`.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] for invalid blocks.
    pub fn pe_cycles(&self, block: BlockId) -> Result<u32, FlashError> {
        self.block_state(block).map(|b| b.pe_cycles)
    }

    /// Whether `block` is usable.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] for invalid blocks.
    pub fn is_bad(&self, block: BlockId) -> Result<bool, FlashError> {
        self.block_state(block).map(|b| b.bad)
    }

    /// The next in-order programmable page index of `block`, or
    /// `pages_per_block` when full.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] for invalid blocks.
    pub fn next_page(&self, block: BlockId) -> Result<u32, FlashError> {
        self.block_state(block).map(|b| b.next_page)
    }

    fn block_state(&self, block: BlockId) -> Result<&BlockState, FlashError> {
        self.blocks
            .get(block.as_u64() as usize)
            .ok_or(FlashError::OutOfRange)
    }

    /// Schedules an operation of length `d` on `channel`, returning its
    /// completion time.
    fn schedule(&mut self, channel: u32, d: SimDuration) -> SimTime {
        let busy = &mut self.channel_busy_until[channel as usize];
        let start = (*busy).max(self.clock.now());
        let done = start + d;
        *busy = done;
        done
    }

    /// Reads a page. Erased pages read as all-`0xFF` (NAND convention).
    /// Returns the page data and the operation's completion time.
    ///
    /// Each read disturbs the block slightly; past
    /// [`FlashArray::read_disturb_limit`] reads since the last erase, the
    /// returned data carries deterministic bit errors whose count grows with
    /// the excess (the stored charge degrades — only an erase heals it).
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`], [`FlashError::BadBlock`], or — with a
    /// fault plane installed — [`FlashError::ReadFailed`].
    pub fn read_page(&mut self, ppn: Ppn) -> Result<(Box<[u8]>, SimTime), FlashError> {
        self.read_page_inner(ppn, true)
    }

    /// Reads a page in *recovery-assisted* mode: the `flash.read_fail`
    /// fault site is not consulted, modeling the slower read-retry voltage
    /// sweep the FTL falls back to after normal reads keep failing. Timing
    /// and read-disturb accounting are identical to [`FlashArray::read_page`].
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] or [`FlashError::BadBlock`].
    pub fn read_page_assisted(&mut self, ppn: Ppn) -> Result<(Box<[u8]>, SimTime), FlashError> {
        self.read_page_inner(ppn, false)
    }

    /// [`FlashArray::read_page`] into a caller-provided buffer of exactly
    /// one page, avoiding the per-read allocation. Semantics, timing, and
    /// read-disturb accounting are identical.
    ///
    /// # Errors
    ///
    /// Same as [`FlashArray::read_page`], plus [`FlashError::BadBufferLen`]
    /// when `buf` is not exactly one page.
    pub fn read_page_into(&mut self, ppn: Ppn, buf: &mut [u8]) -> Result<SimTime, FlashError> {
        self.read_page_inner_into(ppn, true, buf)
    }

    /// [`FlashArray::read_page_assisted`] into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Same as [`FlashArray::read_page_assisted`], plus
    /// [`FlashError::BadBufferLen`] when `buf` is not exactly one page.
    pub fn read_page_assisted_into(
        &mut self,
        ppn: Ppn,
        buf: &mut [u8],
    ) -> Result<SimTime, FlashError> {
        self.read_page_inner_into(ppn, false, buf)
    }

    fn read_page_inner(
        &mut self,
        ppn: Ppn,
        inject: bool,
    ) -> Result<(Box<[u8]>, SimTime), FlashError> {
        let mut data = vec![0u8; self.geometry.page_bytes as usize].into_boxed_slice();
        let done = self.read_page_inner_into(ppn, inject, &mut data)?;
        Ok((data, done))
    }

    fn read_page_inner_into(
        &mut self,
        ppn: Ppn,
        inject: bool,
        buf: &mut [u8],
    ) -> Result<SimTime, FlashError> {
        if buf.len() != self.geometry.page_bytes as usize {
            return Err(FlashError::BadBufferLen {
                got: buf.len(),
                expected: self.geometry.page_bytes as usize,
            });
        }
        let block = self.checked_block(ppn)?;
        let done = self.schedule(
            self.geometry.channel_of(block),
            SimDuration::from_nanos(self.timing.t_read_ns + self.timing.t_xfer_ns),
        );
        self.tel.reads.incr();
        let state = &mut self.blocks[block.as_u64() as usize];
        state.reads_since_erase += 1;
        let excess = state
            .reads_since_erase
            .saturating_sub(self.read_disturb_limit);
        if inject {
            if let Some(draw) = self.fault_plane.consult("flash.read_fail") {
                // 1..=3 flipped bits: correctable / detectable / silent.
                let bits = 1 + (draw % 3) as u32;
                return Err(FlashError::ReadFailed { ppn, bits });
            }
        }
        match &self.pages[ppn.as_u64() as usize] {
            Some(p) => buf.copy_from_slice(&p.data),
            None => buf.fill(0xFF),
        }
        if excess > 0 {
            // One more flipped bit per further `limit/8` reads, up to 32.
            let errors = (1 + excess / (self.read_disturb_limit / 8).max(1)).min(32);
            let bits = u64::from(self.geometry.page_bytes) * 8;
            for e in 0..errors {
                let bit = derive_seed(self.seed, "read-disturb", ppn.as_u64() ^ (e << 48)) % bits;
                buf[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            self.tel.read_disturb_errors.add(errors);
        }
        Ok(done)
    }

    /// Reads a page's OOB area. Erased pages read as all-`0xFF`.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] or [`FlashError::BadBlock`].
    pub fn read_oob(&mut self, ppn: Ppn) -> Result<Box<[u8]>, FlashError> {
        let _ = self.checked_block(ppn)?;
        Ok(match &self.pages[ppn.as_u64() as usize] {
            Some(p) => p.oob.clone(),
            None => vec![0xFFu8; self.geometry.oob_bytes as usize].into_boxed_slice(),
        })
    }

    /// Programs a page with `data` and up to `oob_bytes` of OOB metadata.
    /// Returns the completion time.
    ///
    /// # Errors
    ///
    /// * [`FlashError::NotErased`] if the page was already programmed.
    /// * [`FlashError::OutOfOrderProgram`] if the page is not the block's
    ///   next in-order page.
    /// * [`FlashError::BadBlock`], [`FlashError::OutOfRange`],
    ///   [`FlashError::BadBufferLen`].
    /// * [`FlashError::ProgramFailed`] when the fault plane fires; the page
    ///   slot is burned (consumed but unwritten) and the operation's time
    ///   is still charged, as on real NAND.
    pub fn program_page(
        &mut self,
        ppn: Ppn,
        data: &[u8],
        oob: &[u8],
    ) -> Result<SimTime, FlashError> {
        let block = self.checked_block(ppn)?;
        if data.len() != self.geometry.page_bytes as usize {
            return Err(FlashError::BadBufferLen {
                got: data.len(),
                expected: self.geometry.page_bytes as usize,
            });
        }
        if oob.len() > self.geometry.oob_bytes as usize {
            return Err(FlashError::BadBufferLen {
                got: oob.len(),
                expected: self.geometry.oob_bytes as usize,
            });
        }
        if self.pages[ppn.as_u64() as usize].is_some() {
            return Err(FlashError::NotErased { ppn });
        }
        let page_idx = self.geometry.page_in_block(ppn);
        let state = &mut self.blocks[block.as_u64() as usize];
        if page_idx != state.next_page {
            return Err(FlashError::OutOfOrderProgram {
                ppn,
                expected: state.next_page,
            });
        }
        state.next_page += 1;
        if self.fault_plane.consult("flash.program_fail").is_some() {
            let done = self.schedule(
                self.geometry.channel_of(block),
                SimDuration::from_nanos(self.timing.t_program_ns + self.timing.t_xfer_ns),
            );
            let _ = done;
            return Err(FlashError::ProgramFailed { ppn });
        }
        let mut oob_buf = vec![0u8; self.geometry.oob_bytes as usize].into_boxed_slice();
        oob_buf[..oob.len()].copy_from_slice(oob);
        self.pages[ppn.as_u64() as usize] = Some(PageData {
            data: data.into(),
            oob: oob_buf,
        });
        let done = self.schedule(
            self.geometry.channel_of(block),
            SimDuration::from_nanos(self.timing.t_program_ns + self.timing.t_xfer_ns),
        );
        self.tel.programs.incr();
        Ok(done)
    }

    /// Charges one page-read's worth of time on the channel selected by
    /// `hint` without touching any page — used by FTLs that perform a flash
    /// access even for unmapped reads (the slow path the paper's attacker
    /// avoids by reading trimmed blocks).
    pub fn charge_dummy_read(&mut self, hint: u64) -> SimTime {
        let channel = (hint % u64::from(self.geometry.channels)) as u32;
        self.tel.reads.incr();
        self.schedule(
            channel,
            SimDuration::from_nanos(self.timing.t_read_ns + self.timing.t_xfer_ns),
        )
    }

    /// Erases a whole block, returning the completion time. Consumes one P/E
    /// cycle; a block past its endurance becomes bad.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`], [`FlashError::BadBlock`], or — when the
    /// fault plane fires — [`FlashError::EraseFailed`], which marks the
    /// block grown-bad.
    pub fn erase_block(&mut self, block: BlockId) -> Result<SimTime, FlashError> {
        if block.as_u64() >= self.geometry.total_blocks() {
            return Err(FlashError::OutOfRange);
        }
        if self.blocks[block.as_u64() as usize].bad {
            return Err(FlashError::BadBlock { block });
        }
        if self.fault_plane.consult("flash.erase_fail").is_some() {
            self.blocks[block.as_u64() as usize].bad = true;
            self.tel.grown_bad.incr();
            return Err(FlashError::EraseFailed { block });
        }
        let max_pe = self.max_pe_cycles;
        let state = &mut self.blocks[block.as_u64() as usize];
        state.pe_cycles += 1;
        if state.pe_cycles > max_pe {
            state.bad = true;
            self.tel.wear_failures.incr();
            self.tel.grown_bad.incr();
            return Err(FlashError::BadBlock { block });
        }
        state.next_page = 0;
        state.reads_since_erase = 0;
        let first = self.geometry.first_page(block).as_u64();
        for p in first..first + u64::from(self.geometry.pages_per_block) {
            self.pages[p as usize] = None;
        }
        let done = self.schedule(
            self.geometry.channel_of(block),
            SimDuration::from_nanos(self.timing.t_erase_ns),
        );
        self.tel.erases.incr();
        Ok(done)
    }

    /// Retires `block`: marks it grown-bad so every further access fails
    /// with [`FlashError::BadBlock`]. Used by the FTL when remapping away
    /// from a block that failed a program.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] for invalid blocks.
    pub fn mark_bad(&mut self, block: BlockId) -> Result<(), FlashError> {
        let state = self
            .blocks
            .get_mut(block.as_u64() as usize)
            .ok_or(FlashError::OutOfRange)?;
        if !state.bad {
            state.bad = true;
            self.tel.grown_bad.incr();
        }
        Ok(())
    }

    fn checked_block(&self, ppn: Ppn) -> Result<BlockId, FlashError> {
        if ppn.as_u64() >= self.geometry.total_pages() {
            return Err(FlashError::OutOfRange);
        }
        let block = self.geometry.block_of(ppn);
        if self.blocks[block.as_u64() as usize].bad {
            return Err(FlashError::BadBlock { block });
        }
        Ok(block)
    }

    /// Blocks that are usable (not factory-bad, not worn out).
    #[must_use]
    pub fn good_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.bad)
            .map(|(i, _)| BlockId(i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> FlashArray {
        // Seed 1 yields no factory-bad blocks in the tiny geometry.
        let a = FlashArray::new(FlashGeometry::tiny_test(), SimClock::new(), 1);
        assert_eq!(a.good_blocks().len() as u64, a.geometry().total_blocks());
        a
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn program_read_roundtrip_with_oob() {
        let mut a = array();
        a.program_page(Ppn(0), &page(0xAB), b"lba=77").unwrap();
        let (data, _) = a.read_page(Ppn(0)).unwrap();
        assert!(data.iter().all(|&b| b == 0xAB));
        let oob = a.read_oob(Ppn(0)).unwrap();
        assert_eq!(&oob[..6], b"lba=77");
    }

    #[test]
    fn erased_pages_read_ff() {
        let mut a = array();
        let (data, _) = a.read_page(Ppn(5)).unwrap();
        assert!(data.iter().all(|&b| b == 0xFF));
        assert!(a.read_oob(Ppn(5)).unwrap().iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn no_overwrite_in_place() {
        let mut a = array();
        a.program_page(Ppn(0), &page(1), b"").unwrap();
        assert_eq!(
            a.program_page(Ppn(0), &page(2), b""),
            Err(FlashError::NotErased { ppn: Ppn(0) })
        );
    }

    #[test]
    fn in_order_programming_enforced() {
        let mut a = array();
        a.program_page(Ppn(0), &page(1), b"").unwrap();
        let err = a.program_page(Ppn(2), &page(1), b"").unwrap_err();
        assert_eq!(
            err,
            FlashError::OutOfOrderProgram {
                ppn: Ppn(2),
                expected: 1
            }
        );
        a.program_page(Ppn(1), &page(1), b"").unwrap();
    }

    #[test]
    fn erase_resets_block() {
        let mut a = array();
        for i in 0..3 {
            a.program_page(Ppn(i), &page(9), b"").unwrap();
        }
        a.erase_block(BlockId(0)).unwrap();
        assert_eq!(a.next_page(BlockId(0)).unwrap(), 0);
        let (data, _) = a.read_page(Ppn(0)).unwrap();
        assert!(data.iter().all(|&b| b == 0xFF));
        assert_eq!(a.pe_cycles(BlockId(0)).unwrap(), 1);
        // Programming restarts from page 0.
        a.program_page(Ppn(0), &page(3), b"").unwrap();
    }

    #[test]
    fn wear_out_marks_block_bad() {
        let mut a = array();
        a.set_max_pe_cycles(3);
        for _ in 0..3 {
            a.erase_block(BlockId(2)).unwrap();
        }
        assert_eq!(
            a.erase_block(BlockId(2)),
            Err(FlashError::BadBlock { block: BlockId(2) })
        );
        assert!(a.is_bad(BlockId(2)).unwrap());
        assert_eq!(
            a.read_page(a.geometry().first_page(BlockId(2))),
            Err(FlashError::BadBlock { block: BlockId(2) })
        );
        assert_eq!(a.telemetry().wear_failures, 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut a = array();
        let beyond = Ppn(a.geometry().total_pages());
        assert_eq!(a.read_page(beyond).unwrap_err(), FlashError::OutOfRange);
        assert_eq!(
            a.erase_block(BlockId(a.geometry().total_blocks())),
            Err(FlashError::OutOfRange)
        );
    }

    #[test]
    fn bad_buffer_lengths_rejected() {
        let mut a = array();
        assert!(matches!(
            a.program_page(Ppn(0), &[0u8; 512], b""),
            Err(FlashError::BadBufferLen { .. })
        ));
        assert!(matches!(
            a.program_page(Ppn(0), &page(0), &[0u8; 99]),
            Err(FlashError::BadBufferLen { .. })
        ));
    }

    #[test]
    fn channel_pipelines_accumulate_latency() {
        let mut a = array();
        // Blocks 0 and 1 are on different channels; block 2 shares channel 0
        // with block 0.
        let t0 = a
            .program_page(a.geometry().first_page(BlockId(0)), &page(1), b"")
            .unwrap();
        let t1 = a
            .program_page(a.geometry().first_page(BlockId(1)), &page(1), b"")
            .unwrap();
        let t2 = a
            .program_page(a.geometry().first_page(BlockId(2)), &page(1), b"")
            .unwrap();
        assert_eq!(t0, t1, "parallel channels complete together");
        assert!(t2 > t0, "same channel serializes");
    }

    #[test]
    fn telemetry_counts_operations() {
        let mut a = array();
        a.program_page(Ppn(0), &page(1), b"").unwrap();
        a.read_page(Ppn(0)).unwrap();
        a.erase_block(BlockId(0)).unwrap();
        let t = a.telemetry();
        assert_eq!((t.reads, t.programs, t.erases), (1, 1, 1));
    }

    #[test]
    fn read_disturb_corrupts_past_the_limit_and_erase_heals() {
        let mut a = array();
        a.set_read_disturb_limit(100);
        a.program_page(Ppn(0), &page(0x00), b"").unwrap();
        // Below the limit: clean reads.
        for _ in 0..100 {
            let (d, _) = a.read_page(Ppn(0)).unwrap();
            assert!(d.iter().all(|&b| b == 0x00));
        }
        assert_eq!(a.reads_since_erase(BlockId(0)).unwrap(), 100);
        // Past the limit: corrupted data comes back.
        let mut corrupted = false;
        for _ in 0..50 {
            let (d, _) = a.read_page(Ppn(0)).unwrap();
            corrupted |= d.iter().any(|&b| b != 0x00);
        }
        assert!(corrupted, "read disturb should corrupt returned data");
        assert!(a.telemetry().read_disturb_errors > 0);
        // Erase resets the counter; fresh data reads clean again.
        a.erase_block(BlockId(0)).unwrap();
        assert_eq!(a.reads_since_erase(BlockId(0)).unwrap(), 0);
        a.program_page(Ppn(0), &page(0x11), b"").unwrap();
        let (d, _) = a.read_page(Ppn(0)).unwrap();
        assert!(d.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn dummy_read_charges_channel_time_only() {
        let mut a = array();
        let before = a.telemetry().reads;
        let t = a.charge_dummy_read(3);
        assert!(t > ssdhammer_simkit::SimTime::ZERO);
        assert_eq!(a.telemetry().reads, before + 1);
        // No page state was touched.
        assert_eq!(a.reads_since_erase(BlockId(1)).unwrap(), 0);
    }

    #[test]
    fn fault_plane_read_fail_fires_and_assisted_read_bypasses() {
        use ssdhammer_simkit::faultplane::{FaultPlaneConfig, FaultSpec};
        let mut a = array();
        a.program_page(Ppn(0), &page(0x5A), b"").unwrap();
        let cfg = FaultPlaneConfig::new().with_site("flash.read_fail", FaultSpec::always());
        a.set_fault_plane(FaultPlane::new(3, &cfg));
        let err = a.read_page(Ppn(0)).unwrap_err();
        assert!(
            matches!(err, FlashError::ReadFailed { ppn: Ppn(0), bits } if (1..=3).contains(&bits))
        );
        // The assisted (retry-ladder) read ignores the site and succeeds.
        let (data, _) = a.read_page_assisted(Ppn(0)).unwrap();
        assert!(data.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn fault_plane_program_fail_burns_the_page_slot() {
        use ssdhammer_simkit::faultplane::{FaultPlaneConfig, FaultSpec};
        let mut a = array();
        let cfg = FaultPlaneConfig::new()
            .with_site("flash.program_fail", FaultSpec::always().with_max_fires(1));
        a.set_fault_plane(FaultPlane::new(3, &cfg));
        assert_eq!(
            a.program_page(Ppn(0), &page(1), b""),
            Err(FlashError::ProgramFailed { ppn: Ppn(0) })
        );
        // Page 0's slot is consumed; the block expects page 1 next, and the
        // failed page reads back erased.
        assert_eq!(a.next_page(BlockId(0)).unwrap(), 1);
        a.program_page(Ppn(1), &page(2), b"").unwrap();
        let (data, _) = a.read_page(Ppn(0)).unwrap();
        assert!(data.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn fault_plane_erase_fail_grows_a_bad_block() {
        use ssdhammer_simkit::faultplane::{FaultPlaneConfig, FaultSpec};
        let mut a = array();
        let cfg = FaultPlaneConfig::new()
            .with_site("flash.erase_fail", FaultSpec::always().with_max_fires(1));
        a.set_fault_plane(FaultPlane::new(3, &cfg));
        assert_eq!(
            a.erase_block(BlockId(1)),
            Err(FlashError::EraseFailed { block: BlockId(1) })
        );
        assert!(a.is_bad(BlockId(1)).unwrap());
        assert_eq!(a.telemetry().grown_bad, 1);
        // Other blocks still work once the single fire is spent.
        a.erase_block(BlockId(0)).unwrap();
    }

    #[test]
    fn mark_bad_retires_a_block() {
        let mut a = array();
        a.mark_bad(BlockId(2)).unwrap();
        assert!(a.is_bad(BlockId(2)).unwrap());
        assert_eq!(a.telemetry().grown_bad, 1);
        // Idempotent: no double count.
        a.mark_bad(BlockId(2)).unwrap();
        assert_eq!(a.telemetry().grown_bad, 1);
        assert_eq!(a.mark_bad(BlockId(999_999)), Err(FlashError::OutOfRange));
    }

    #[test]
    fn factory_bad_blocks_are_deterministic() {
        let a1 = FlashArray::new(FlashGeometry::gib1(), SimClock::new(), 99);
        let a2 = FlashArray::new(FlashGeometry::gib1(), SimClock::new(), 99);
        assert_eq!(a1.good_blocks(), a2.good_blocks());
    }
}
