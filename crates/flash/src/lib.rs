//! # ssdhammer-flash
//!
//! A NAND flash array simulator: the storage substrate under the FTL in the
//! `ssdhammer` reproduction of *Rowhammering Storage Devices* (HotStorage
//! '21).
//!
//! Flash "lacks support for in-place writes and performs accesses in large
//! units due to physical limitations of flash cell technology" (§2.1) — the
//! reason FTLs, and therefore the attack's target L2P table, exist at all.
//! This crate enforces those physics:
//!
//! * [`FlashGeometry`] — channels × dies × planes × blocks × pages.
//! * [`FlashArray`] — erase-before-program, strict in-order programming
//!   within a block, whole-block erases, OOB metadata for the FTL's reverse
//!   map, P/E-cycle wear with bad-block retirement, and per-channel
//!   operation pipelining that returns completion *times* on the simulated
//!   clock (so the NVMe layer can model realistic IOPS).
//!
//! # Examples
//!
//! ```
//! use ssdhammer_flash::{BlockId, FlashArray, FlashGeometry, Ppn};
//! use ssdhammer_simkit::SimClock;
//!
//! # fn main() -> Result<(), ssdhammer_flash::FlashError> {
//! let mut nand = FlashArray::new(FlashGeometry::tiny_test(), SimClock::new(), 1);
//! nand.program_page(Ppn(0), &vec![1u8; 4096], b"lba:42")?;
//! // In-place update is physically impossible:
//! assert!(nand.program_page(Ppn(0), &vec![2u8; 4096], b"").is_err());
//! // Only a whole-block erase frees the page again:
//! nand.erase_block(BlockId(0))?;
//! nand.program_page(Ppn(0), &vec![2u8; 4096], b"")?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod geometry;

pub use array::{FlashArray, FlashError, FlashTelemetry};
pub use geometry::{BlockId, FlashGeometry, FlashTiming, Ppn};
