//! On-flash L2P change journal.
//!
//! The OOB scan in [`Ftl::recover`] reconstructs mappings from page
//! metadata, but it cannot see operations that leave no page behind —
//! TRIMs above all come back mapped after a crash. The journal closes that
//! gap: every host mutation appends a fixed-size entry to an in-memory
//! buffer which is checkpointed to a reserved region of flash blocks every
//! [`FtlConfig::journal_checkpoint_every`] entries. On remount, replaying
//! the journal over the OOB-scan winners (ordered by write sequence)
//! restores the exact pre-crash table.
//!
//! Journal pages are distinguished from data pages by a sentinel LBA in
//! their OOB ([`JOURNAL_LBA_MARKER`]), far above any exportable capacity,
//! so the normal OOB scan skips them automatically.
//!
//! Every record carries its own CRC-32C, so a page torn by a mid-append
//! power cut — the final record only partially written — is detected and
//! truncated at the first bad record ([`DecodedPage::torn`]) instead of
//! being replayed as garbage or aborting recovery.
//!
//! [`Ftl::recover`]: crate::Ftl::recover
//! [`FtlConfig::journal_checkpoint_every`]: crate::FtlConfig::journal_checkpoint_every

use ssdhammer_simkit::bytes::{le_u32, le_u64};
use ssdhammer_simkit::crc32c;

/// Sentinel OOB LBA marking a page as journal payload rather than data.
pub(crate) const JOURNAL_LBA_MARKER: u64 = u64::MAX - 1;

/// Magic number opening every journal page.
const PAGE_MAGIC: u32 = 0x4A4E_4C31; // "JNL1"

/// Serialized size of one entry: LBA (8) + sequence (8) + PPN (4) +
/// CRC-32C over the preceding 20 bytes (4).
pub(crate) const ENTRY_BYTES: usize = 24;

/// Bytes of an entry covered by its trailing CRC.
const ENTRY_PAYLOAD_BYTES: usize = 20;

/// Page header: magic (4) + entry count (4).
const HEADER_BYTES: usize = 8;

/// One logged L2P mutation. `ppn == u32::MAX` (the table's invalid
/// sentinel) encodes a TRIM; anything else is a write or relocation
/// mapping `lba → ppn`, ordered against the OOB scan by `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JournalEntry {
    pub lba: u64,
    pub seq: u64,
    pub ppn: u32,
}

/// A decoded journal page: the records whose CRCs verified, and whether
/// the page ended in a torn (CRC-failing) record that was truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DecodedPage {
    pub entries: Vec<JournalEntry>,
    pub torn: bool,
}

/// Entries that fit one journal page of `page_bytes`.
pub(crate) fn entries_per_page(page_bytes: usize) -> usize {
    page_bytes.saturating_sub(HEADER_BYTES) / ENTRY_BYTES
}

/// Serializes `entries` into one full flash page (zero-padded).
pub(crate) fn encode_page(entries: &[JournalEntry], page_bytes: usize) -> Vec<u8> {
    debug_assert!(entries.len() <= entries_per_page(page_bytes));
    let mut page = vec![0u8; page_bytes];
    page[..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    page[4..8].copy_from_slice(&(entries.len() as u32).to_le_bytes());
    for (i, e) in entries.iter().enumerate() {
        let at = HEADER_BYTES + i * ENTRY_BYTES;
        page[at..at + 8].copy_from_slice(&e.lba.to_le_bytes());
        page[at + 8..at + 16].copy_from_slice(&e.seq.to_le_bytes());
        page[at + 16..at + 20].copy_from_slice(&e.ppn.to_le_bytes());
        let crc = crc32c(&page[at..at + ENTRY_PAYLOAD_BYTES]);
        page[at + 20..at + 24].copy_from_slice(&crc.to_le_bytes());
    }
    page
}

/// Serializes `entries` like [`encode_page`], then tears the final record
/// as a mid-append power cut would: its trailing bytes (second half of the
/// payload plus the CRC) never reach the cells and read back as zeroes.
/// Decoding such a page yields all but the final record, with
/// [`DecodedPage::torn`] set.
pub(crate) fn encode_page_torn(entries: &[JournalEntry], page_bytes: usize) -> Vec<u8> {
    let mut page = encode_page(entries, page_bytes);
    if let Some(last) = entries.len().checked_sub(1) {
        let at = HEADER_BYTES + last * ENTRY_BYTES;
        for b in &mut page[at + ENTRY_PAYLOAD_BYTES / 2..at + ENTRY_BYTES] {
            *b = 0;
        }
    }
    page
}

/// Deserializes a journal page; returns no entries for pages that do not
/// carry the magic (burned or torn pages read back as `0xFF` / zeroes).
/// Records are verified front-to-back against their CRCs; the first bad
/// record truncates the page and marks it torn. A count claiming more
/// records than fit is itself corruption and marks the page torn.
#[cfg(test)]
pub(crate) fn decode_page(page: &[u8]) -> DecodedPage {
    decode_page_with(page, true)
}

/// `decode_page` with per-record CRC verification made optional.
///
/// `verify_crc = false` trusts the claimed count and replays every record
/// as-is — including a torn tail whose zeroed trailing bytes decode as a
/// live `lba → ppn 0` mapping. That is exactly the wrong-mapping bug the
/// CRCs exist to prevent; the knob exists (via
/// [`FtlConfig::with_journal_verify_crc`]) so the fuzz oracle's
/// planted-bug test can prove it catches the corruption when the defense
/// is off. Never disable it outside such a test.
///
/// [`FtlConfig::with_journal_verify_crc`]: crate::FtlConfig::with_journal_verify_crc
pub(crate) fn decode_page_with(page: &[u8], verify_crc: bool) -> DecodedPage {
    if page.len() < HEADER_BYTES || le_u32(page, 0) != PAGE_MAGIC {
        return DecodedPage {
            entries: Vec::new(),
            torn: false,
        };
    }
    let count = le_u32(page, 4) as usize;
    let max = entries_per_page(page.len());
    let claimed = count.min(max);
    let mut entries = Vec::with_capacity(claimed);
    let mut torn = count > max;
    for i in 0..claimed {
        let at = HEADER_BYTES + i * ENTRY_BYTES;
        if verify_crc
            && crc32c(&page[at..at + ENTRY_PAYLOAD_BYTES]) != le_u32(page, at + ENTRY_PAYLOAD_BYTES)
        {
            torn = true;
            break;
        }
        entries.push(JournalEntry {
            lba: le_u64(page, at),
            seq: le_u64(page, at + 8),
            ppn: le_u32(page, at + 16),
        });
    }
    DecodedPage { entries, torn }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_full_page() {
        let page_bytes = 4096;
        let n = entries_per_page(page_bytes);
        assert_eq!(n, (4096 - 8) / 24);
        let entries: Vec<JournalEntry> = (0..n as u64)
            .map(|i| JournalEntry {
                lba: i,
                seq: 1000 + i,
                ppn: (i * 3) as u32,
            })
            .collect();
        let page = encode_page(&entries, page_bytes);
        assert_eq!(page.len(), page_bytes);
        let decoded = decode_page(&page);
        assert_eq!(decoded.entries, entries);
        assert!(!decoded.torn);
    }

    #[test]
    fn roundtrip_partial_page() {
        let entries = vec![
            JournalEntry {
                lba: 7,
                seq: 9,
                ppn: 42,
            },
            JournalEntry {
                lba: 8,
                seq: 10,
                ppn: u32::MAX, // TRIM
            },
        ];
        let page = encode_page(&entries, 4096);
        let decoded = decode_page(&page);
        assert_eq!(decoded.entries, entries);
        assert!(!decoded.torn);
    }

    #[test]
    fn erased_and_garbage_pages_decode_empty() {
        assert!(decode_page(&vec![0xFFu8; 4096]).entries.is_empty());
        assert!(decode_page(&vec![0u8; 4096]).entries.is_empty());
        assert!(decode_page(&[1, 2, 3]).entries.is_empty());
    }

    #[test]
    fn corrupt_count_is_clamped_and_flagged() {
        // An all-records page whose count field was blasted to MAX: the
        // claimed count clamps to capacity and the lie marks the page torn,
        // but every intact record still replays.
        let n = entries_per_page(4096);
        let entries: Vec<JournalEntry> = (0..n as u64)
            .map(|i| JournalEntry {
                lba: i,
                seq: i,
                ppn: i as u32,
            })
            .collect();
        let mut page = encode_page(&entries, 4096);
        page[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let decoded = decode_page(&page);
        assert_eq!(decoded.entries, entries);
        assert!(decoded.torn);
    }

    #[test]
    fn torn_tail_is_truncated_never_replayed() {
        let entries: Vec<JournalEntry> = (0..5u64)
            .map(|i| JournalEntry {
                lba: 10 + i,
                seq: 100 + i,
                ppn: 7 + i as u32,
            })
            .collect();
        let page = encode_page_torn(&entries, 4096);
        let decoded = decode_page(&page);
        assert!(decoded.torn);
        assert_eq!(decoded.entries, entries[..4]);
    }

    #[test]
    fn unverified_decode_replays_the_torn_tail_as_a_wild_mapping() {
        // What the CRC defends against: without verification the torn
        // final record decodes as a live mapping with its trailing bytes
        // zeroed (ppn 0), ready to corrupt the L2P table on replay.
        let entries: Vec<JournalEntry> = (0..3u64)
            .map(|i| JournalEntry {
                lba: 10 + i,
                seq: 100 + i,
                ppn: 7 + i as u32,
            })
            .collect();
        let page = encode_page_torn(&entries, 4096);
        let decoded = decode_page_with(&page, false);
        assert!(!decoded.torn, "nothing flags the tear");
        assert_eq!(decoded.entries.len(), 3);
        assert_eq!(decoded.entries[..2], entries[..2]);
        assert_eq!(decoded.entries[2].lba, 12, "lba bytes survive the tear");
        assert_eq!(decoded.entries[2].ppn, 0, "ppn bytes zeroed by the tear");
    }

    #[test]
    fn torn_single_record_page_decodes_empty_and_torn() {
        let entries = vec![JournalEntry {
            lba: 1,
            seq: 2,
            ppn: 3,
        }];
        let decoded = decode_page(&encode_page_torn(&entries, 4096));
        assert!(decoded.torn);
        assert!(decoded.entries.is_empty());
    }

    #[test]
    fn mid_page_corruption_truncates_at_first_bad_record() {
        let entries: Vec<JournalEntry> = (0..6u64)
            .map(|i| JournalEntry {
                lba: i,
                seq: i,
                ppn: i as u32,
            })
            .collect();
        let mut page = encode_page(&entries, 4096);
        // Flip one payload bit in record 2; its CRC no longer matches.
        let at = HEADER_BYTES + 2 * ENTRY_BYTES;
        page[at + 3] ^= 0x10;
        let decoded = decode_page(&page);
        assert!(decoded.torn);
        assert_eq!(decoded.entries, entries[..2]);
    }
}
