//! The page-mapped flash translation layer.
//!
//! Structurally modeled on the SPDK FTL the paper attacked (§4.1): a
//! DRAM-resident L2P array, out-of-place writes with an append point, greedy
//! garbage collection, and wear-aware block allocation. Every L2P lookup and
//! update is a real access to the simulated [`DramModule`], so host I/O
//! produces DRAM row activations — the attack surface.

use ssdhammer_dram::{DramError, DramModule, EccOutcome, HammerOptions, HammerReport};
use ssdhammer_flash::{BlockId, FlashArray, FlashError, Ppn};
use ssdhammer_simkit::bytes::{le_u32, le_u64};
use ssdhammer_simkit::faultplane::FaultPlane;
use ssdhammer_simkit::rng::derive_seed;
use ssdhammer_simkit::telemetry::{CounterHandle, GaugeHandle, Telemetry};
use ssdhammer_simkit::{DramAddr, Lba, SimClock, SimTime, BLOCK_SIZE};

use crate::integrity::{IntegrityMode, IntegrityPlane, VerifyOutcome};
use crate::journal::{self, JournalEntry};
use crate::l2p::{L2pLayout, L2pTable};
use crate::meta::{MetaKind, MetaPlane};

/// Errors surfaced by FTL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// LBA beyond the exported capacity.
    OutOfRange {
        /// The offending address.
        lba: Lba,
    },
    /// Buffer is not exactly one 4 KiB block.
    BadBufferLen {
        /// Supplied length.
        got: usize,
    },
    /// No free space remains even after garbage collection.
    DeviceFull,
    /// The underlying DRAM failed (e.g. ECC-uncorrectable L2P entry).
    Dram(DramError),
    /// The underlying flash failed.
    Flash(FlashError),
    /// A flash page stayed unreadable through the whole recovery ladder
    /// (read retries, then ECC escalation).
    Uncorrectable {
        /// The page that could not be read.
        ppn: Ppn,
    },
    /// The device degraded to read-only mode (remap or journal budget
    /// exhausted); writes and trims are rejected, reads still work.
    ReadOnly,
    /// A (simulated) power loss occurred; all operations fail until the
    /// device is remounted via [`Ftl::recover`].
    PowerLoss,
    /// A physical page number does not fit the 32-bit L2P entry (or
    /// collides with the unmapped sentinel) — the caller built an
    /// impossible geometry.
    EntryOverflow {
        /// The unrepresentable page.
        ppn: Ppn,
    },
    /// L2P entry integrity verification failed and the entry could not be
    /// repaired ([`FtlConfig::integrity`]); the lookup fails loudly
    /// instead of serving a (possibly redirected) mapping.
    L2pIntegrity {
        /// The LBA whose entry diverged.
        lba: Lba,
    },
}

impl FtlError {
    /// A stable, variant-level signature for failure triage: equal
    /// signatures bucket together in fuzz reports regardless of the
    /// addresses or inner errors carried by the variant.
    #[must_use]
    pub fn signature(&self) -> &'static str {
        match self {
            FtlError::OutOfRange { .. } => "out_of_range",
            FtlError::BadBufferLen { .. } => "bad_buffer_len",
            FtlError::DeviceFull => "device_full",
            FtlError::Dram(_) => "dram",
            FtlError::Flash(_) => "flash",
            FtlError::Uncorrectable { .. } => "uncorrectable",
            FtlError::ReadOnly => "read_only",
            FtlError::PowerLoss => "power_loss",
            FtlError::EntryOverflow { .. } => "entry_overflow",
            FtlError::L2pIntegrity { .. } => "l2p_integrity",
        }
    }
}

/// The host-visible operation classes an [`FtlError`] can surface from,
/// used by [`error_is_legal`] to judge whether a typed error is a lawful
/// response or itself a contract violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOp {
    /// [`Ftl::read`].
    Read,
    /// [`Ftl::write`].
    Write,
    /// [`Ftl::trim`].
    Trim,
    /// [`Ftl::flush`].
    Flush,
    /// [`Ftl::scrub_chunk`].
    Scrub,
    /// [`Ftl::hammer_reads`] / [`Ftl::hammer_reads_with`].
    Hammer,
}

/// The typed-error legality table: whether `err` is a *lawful* response
/// to an in-range, well-formed `op` — media failures and loud degradation
/// are part of the contract; validation errors against valid requests and
/// spontaneous power loss are not. `cut_armed` states whether a fault-plane
/// power cut is armed for this workload: [`FtlError::PowerLoss`] is lawful
/// only then. The fuzz oracle flags any illegal error as a divergence.
#[must_use]
pub fn error_is_legal(op: HostOp, err: &FtlError, cut_armed: bool) -> bool {
    match err {
        // The fuzzer only issues in-range, block-sized requests on sane
        // geometries, so validation errors signal FTL-side corruption.
        FtlError::OutOfRange { .. }
        | FtlError::BadBufferLen { .. }
        | FtlError::EntryOverflow { .. } => false,
        // Capacity exhaustion is only a lawful answer to a write.
        FtlError::DeviceFull => op == HostOp::Write,
        // Loud media/integrity failures are always lawful: the contract is
        // "never lie", not "never fail".
        FtlError::Dram(_)
        | FtlError::Flash(_)
        | FtlError::Uncorrectable { .. }
        | FtlError::L2pIntegrity { .. } => true,
        // Read-only degradation rejects mutations; reads and hammer reads
        // must still be served.
        FtlError::ReadOnly => !matches!(op, HostOp::Read | HostOp::Hammer),
        // Power loss is lawful exactly when a cut is armed.
        FtlError::PowerLoss => cut_armed,
    }
}

impl From<DramError> for FtlError {
    fn from(e: DramError) -> Self {
        FtlError::Dram(e)
    }
}

impl From<FlashError> for FtlError {
    fn from(e: FlashError) -> Self {
        FtlError::Flash(e)
    }
}

impl core::fmt::Display for FtlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FtlError::OutOfRange { lba } => write!(f, "{lba} beyond exported capacity"),
            FtlError::BadBufferLen { got } => {
                write!(f, "buffer length {got}, expected {BLOCK_SIZE}")
            }
            FtlError::DeviceFull => write!(f, "device full"),
            FtlError::Dram(e) => write!(f, "dram: {e}"),
            FtlError::Flash(e) => write!(f, "flash: {e}"),
            FtlError::Uncorrectable { ppn } => {
                write!(f, "{ppn} unreadable after retry ladder and ECC")
            }
            FtlError::ReadOnly => write!(f, "device degraded to read-only"),
            FtlError::PowerLoss => write!(f, "power lost; remount required"),
            FtlError::EntryOverflow { ppn } => {
                write!(f, "{ppn} does not fit a 32-bit L2P entry")
            }
            FtlError::L2pIntegrity { lba } => {
                write!(f, "L2P entry of {lba} failed integrity verification")
            }
        }
    }
}

impl std::error::Error for FtlError {}

/// Fault-plane crash sites consulted on the FTL's metadata-persistence
/// paths, one per recovery-critical structure. Each behaves like the
/// `ftl.power_loss` site — when it fires, power is cut at that exact
/// point and the device stays offline until [`Ftl::recover`] — but is
/// placed *inside* the persistence operation, so torture campaigns
/// (`simkit::torture`) can cut power at every journal append, mirror
/// write-through, grown-bad remap, scrub pass, and explicit flush a
/// workload performs.
pub const CRASH_SITES: &[&str] = &[
    "ftl.crash.journal_append",
    "ftl.crash.meta_mirror",
    "ftl.crash.bad_block_remap",
    "ftl.crash.scrub_repair",
    "ftl.crash.l2p_flush",
];

/// FTL construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlConfig {
    /// L2P placement policy.
    pub l2p_layout: L2pLayout,
    /// DRAM byte address where the L2P table starts.
    pub l2p_base: DramAddr,
    /// Blocks reserved as overprovisioning (not exported). `0` selects an
    /// automatic 1/16 of all blocks (min 2).
    pub overprovision_blocks: u32,
    /// Garbage collection starts when the free-block count drops to this.
    pub gc_free_threshold: u32,
    /// DRAM activations of the entry's row per host I/O. The paper's SPDK
    /// prototype amplified to 5 per request to compensate for its slow
    /// testbed (§4.1); real firmware corresponds to 1.
    pub hammer_amplification: u32,
    /// Serve reads of unmapped/trimmed LBAs without touching flash — the
    /// acceleration the paper notes attackers prefer (§3, threat model).
    pub unmapped_fast_path: bool,
    /// Relocate a block once it has served this many reads since its last
    /// erase, to stay ahead of NAND read disturb. `None` disables
    /// read-refresh (data then degrades past the flash's tolerance).
    pub read_refresh_threshold: Option<u64>,
    /// T10-DIF-style block integrity (§5: "block data integrity … algorithms
    /// protect data integrity … from misdirected writes by relying on the
    /// block's LBA to digest … block data"): every page stores a guard tag
    /// binding (LBA, data); reads verify it, so a redirected mapping fails
    /// loudly instead of silently serving another block's data.
    pub dif: bool,
    /// Read-retry ladder depth: how many times a failed media read is
    /// re-issued before escalating to ECC classification.
    pub read_retry_max: u32,
    /// Blocks the FTL may retire (grown-bad remaps) before degrading to
    /// read-only mode.
    pub remap_budget: u32,
    /// Checkpoint the L2P change journal to flash every this many logged
    /// mutations. `0` disables journaling entirely (TRIMs are then lost
    /// across power cuts, as in journal-less FTLs).
    pub journal_checkpoint_every: u32,
    /// Flash blocks reserved for the journal when journaling is enabled
    /// (subtracted from the exported capacity). When the region fills, the
    /// device degrades to read-only.
    pub journal_blocks: u32,
    /// L2P entry integrity protection: per-entry SEC-DED codes (and, in
    /// [`IntegrityMode::Correct`], a distant mirror copy) verified on the
    /// firmware's read path. See [`crate::integrity`].
    pub integrity: IntegrityMode,
    /// Keep FTL metadata (grown-bad-block table, wear counters, journal
    /// write cache) resident in DRAM alongside the L2P table, making it a
    /// rowhammer target of its own. See [`crate::meta`]. Off by default:
    /// write-through costs timed DRAM accesses.
    pub meta_resident: bool,
    /// Verify per-record CRC-32C during journal replay (on by default).
    /// Disabling it replays torn journal tails as wild mappings — a
    /// planted bug kept behind a knob so the fuzz oracle's planted-bug
    /// test can prove the differential check catches the corruption.
    /// Never disable outside such a test.
    pub journal_verify_crc: bool,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            l2p_layout: L2pLayout::Linear,
            l2p_base: DramAddr(0),
            overprovision_blocks: 0,
            gc_free_threshold: 2,
            hammer_amplification: 1,
            unmapped_fast_path: true,
            // Half the flash default tolerance: hot metadata pages (e.g. a
            // filesystem's directory blocks, re-read on every lookup) cross
            // the NAND read-disturb limit quickly; production FTLs relocate
            // them preemptively.
            read_refresh_threshold: Some(50_000),
            dif: false,
            read_retry_max: 4,
            remap_budget: 16,
            journal_checkpoint_every: 0,
            journal_blocks: 2,
            integrity: IntegrityMode::Off,
            meta_resident: false,
            journal_verify_crc: true,
        }
    }
}

impl FtlConfig {
    // Builder-style setters over `Default`:
    // `FtlConfig::default().with_l2p_layout(L2pLayout::hashed()).with_dif(true)`.

    /// Replaces the L2P placement policy.
    #[must_use]
    pub fn with_l2p_layout(mut self, layout: L2pLayout) -> Self {
        self.l2p_layout = layout;
        self
    }

    /// Replaces the DRAM byte address where the L2P table starts.
    #[must_use]
    pub fn with_l2p_base(mut self, base: DramAddr) -> Self {
        self.l2p_base = base;
        self
    }

    /// Replaces the overprovisioning reservation (`0` = automatic 1/16).
    #[must_use]
    pub fn with_overprovision_blocks(mut self, blocks: u32) -> Self {
        self.overprovision_blocks = blocks;
        self
    }

    /// Replaces the garbage-collection trigger threshold.
    #[must_use]
    pub fn with_gc_free_threshold(mut self, threshold: u32) -> Self {
        self.gc_free_threshold = threshold;
        self
    }

    /// Replaces the per-I/O row-activation amplification factor.
    #[must_use]
    pub fn with_hammer_amplification(mut self, factor: u32) -> Self {
        self.hammer_amplification = factor;
        self
    }

    /// Enables or disables the unmapped-read fast path.
    #[must_use]
    pub fn with_unmapped_fast_path(mut self, enabled: bool) -> Self {
        self.unmapped_fast_path = enabled;
        self
    }

    /// Replaces the read-refresh relocation threshold (`None` disables).
    #[must_use]
    pub fn with_read_refresh_threshold(mut self, threshold: Option<u64>) -> Self {
        self.read_refresh_threshold = threshold;
        self
    }

    /// Enables or disables T10-DIF-style block integrity.
    #[must_use]
    pub fn with_dif(mut self, enabled: bool) -> Self {
        self.dif = enabled;
        self
    }

    /// Replaces the read-retry ladder depth.
    #[must_use]
    pub fn with_read_retry_max(mut self, retries: u32) -> Self {
        self.read_retry_max = retries;
        self
    }

    /// Replaces the grown-bad-block remap budget.
    #[must_use]
    pub fn with_remap_budget(mut self, budget: u32) -> Self {
        self.remap_budget = budget;
        self
    }

    /// Replaces the journal checkpoint interval (`0` disables journaling).
    #[must_use]
    pub fn with_journal_checkpoint_every(mut self, entries: u32) -> Self {
        self.journal_checkpoint_every = entries;
        self
    }

    /// Replaces the journal region size in blocks.
    #[must_use]
    pub fn with_journal_blocks(mut self, blocks: u32) -> Self {
        self.journal_blocks = blocks;
        self
    }

    /// Replaces the L2P integrity protection mode.
    #[must_use]
    pub fn with_integrity(mut self, mode: IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// Enables or disables the DRAM-resident metadata plane.
    #[must_use]
    pub fn with_meta_resident(mut self, enabled: bool) -> Self {
        self.meta_resident = enabled;
        self
    }

    /// Enables or disables journal-replay CRC verification. A fuzz-oracle
    /// test hook ([`FtlConfig::journal_verify_crc`]); leave on everywhere
    /// else.
    #[must_use]
    pub fn with_journal_verify_crc(mut self, enabled: bool) -> Self {
        self.journal_verify_crc = enabled;
        self
    }
}

/// What a read translated to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Entry was the unmapped sentinel; zeroes returned without flash access.
    Unmapped,
    /// Entry was unmapped but the fast path is disabled
    /// ([`FtlConfig::unmapped_fast_path`]): the firmware performed a flash
    /// access anyway, costing real channel time.
    SlowUnmapped {
        /// Flash completion time of the wasted access.
        completed: SimTime,
    },
    /// Entry decoded to a physical page beyond the array — a wildly
    /// corrupted mapping. Zeroes returned.
    Wild {
        /// The raw (corrupt) page number found in the entry.
        entry: u64,
    },
    /// DIF verification failed: the mapped page's guard tag does not match
    /// this LBA+data (a misdirected mapping). Zeroes returned; the host sees
    /// an integrity error instead of another block's data.
    GuardMismatch {
        /// The physical page that failed verification.
        ppn: Ppn,
    },
    /// Entry pointed at a real page, which was read.
    Mapped {
        /// The physical page served.
        ppn: Ppn,
        /// Flash completion time of the read.
        completed: SimTime,
    },
}

/// Point-in-time view of the FTL's counters in the shared
/// [`Telemetry`] registry (metric names `ftl.*`).
#[derive(Debug, Default, Clone)]
pub struct FtlTelemetry {
    /// Host reads served.
    pub host_reads: u64,
    /// Host writes served.
    pub host_writes: u64,
    /// Host trims served.
    pub host_trims: u64,
    /// Garbage-collection victim blocks processed.
    pub gc_runs: u64,
    /// Pages relocated by garbage collection or read-refresh.
    pub gc_relocated: u64,
    /// Blocks relocated preemptively due to read disturb.
    pub read_refreshes: u64,
    /// L2P table lookups issued through simulated DRAM.
    pub l2p_reads: u64,
    /// L2P table updates issued through simulated DRAM.
    pub l2p_writes: u64,
    /// Reads whose mapping resolved somewhere provably wrong (wild entries
    /// and DIF guard mismatches).
    pub redirections_detected: u64,
    /// Media read failures recovered by re-issuing the read.
    pub read_retries: u64,
    /// Reads recovered by ECC after the retry ladder was exhausted.
    pub ecc_corrected: u64,
    /// Reads whose flipped bits exceeded ECC detection: wrong data was
    /// served as if clean (caught only by DIF, when enabled).
    pub silent_corruptions: u64,
    /// Reads that stayed unreadable through the whole recovery ladder.
    pub uncorrectable_reads: u64,
    /// Blocks retired grown-bad and remapped away from.
    pub bad_block_remaps: u64,
    /// Journal pages checkpointed to flash.
    pub journal_checkpoints: u64,
    /// Journal entries applied during the last [`Ftl::recover`].
    pub journal_replayed: u64,
    /// Simulated power-loss events taken.
    pub power_losses: u64,
    /// 1 when the device has degraded to read-only mode.
    pub read_only: f64,
    /// L2P entries whose integrity verification found a mismatch.
    pub integrity_detected: u64,
    /// Single-bit L2P entry errors repaired in place (SEC-DED).
    pub integrity_repaired: u64,
    /// Multi-bit L2P entry errors restored from the distant mirror.
    pub integrity_mirror_repairs: u64,
    /// L2P entries where primary and mirror both diverged beyond repair
    /// (each degrades the device to read-only).
    pub integrity_unrepairable: u64,
    /// L2P entries verified by the patrol scrubber.
    pub scrub_entries_checked: u64,
    /// Errors repaired during patrol scrubs (DRAM ECC, flash ECC, or
    /// integrity-plane repairs attributable to the scrub pass).
    pub scrub_repairs: u64,
    /// Flash patrol reads issued by the scrubber.
    pub scrub_flash_reads: u64,
    /// Completed full sweeps of the L2P table.
    pub scrub_sweeps: u64,
}

/// Handles into the shared registry, resolved once at bind time.
#[derive(Debug, Clone)]
struct FtlHandles {
    registry: Telemetry,
    host_reads: CounterHandle,
    host_writes: CounterHandle,
    host_trims: CounterHandle,
    gc_runs: CounterHandle,
    gc_relocated: CounterHandle,
    read_refreshes: CounterHandle,
    l2p_reads: CounterHandle,
    l2p_writes: CounterHandle,
    redirections_detected: CounterHandle,
    read_retries: CounterHandle,
    ecc_corrected: CounterHandle,
    silent_corruptions: CounterHandle,
    uncorrectable_reads: CounterHandle,
    bad_block_remaps: CounterHandle,
    journal_checkpoints: CounterHandle,
    journal_replayed: CounterHandle,
    power_losses: CounterHandle,
    read_only: GaugeHandle,
    integrity_detected: CounterHandle,
    integrity_repaired: CounterHandle,
    integrity_mirror_repairs: CounterHandle,
    integrity_unrepairable: CounterHandle,
    scrub_entries_checked: CounterHandle,
    scrub_repairs: CounterHandle,
    scrub_flash_reads: CounterHandle,
    scrub_sweeps: CounterHandle,
}

impl FtlHandles {
    fn bind(registry: Telemetry) -> Self {
        FtlHandles {
            host_reads: registry.counter("ftl.host_reads"),
            host_writes: registry.counter("ftl.host_writes"),
            host_trims: registry.counter("ftl.host_trims"),
            gc_runs: registry.counter("ftl.gc_runs"),
            gc_relocated: registry.counter("ftl.gc_relocated"),
            read_refreshes: registry.counter("ftl.read_refreshes"),
            l2p_reads: registry.counter("ftl.l2p_reads"),
            l2p_writes: registry.counter("ftl.l2p_writes"),
            redirections_detected: registry.counter("ftl.redirections_detected"),
            read_retries: registry.counter("recovery.read_retries"),
            ecc_corrected: registry.counter("recovery.ecc_corrected"),
            silent_corruptions: registry.counter("recovery.silent_corruptions"),
            uncorrectable_reads: registry.counter("recovery.uncorrectable_reads"),
            bad_block_remaps: registry.counter("recovery.bad_block_remaps"),
            journal_checkpoints: registry.counter("recovery.journal_checkpoints"),
            journal_replayed: registry.counter("recovery.journal_replayed"),
            power_losses: registry.counter("recovery.power_losses"),
            read_only: registry.gauge("recovery.read_only"),
            integrity_detected: registry.counter("integrity.detected"),
            integrity_repaired: registry.counter("integrity.repaired"),
            integrity_mirror_repairs: registry.counter("integrity.mirror_repairs"),
            integrity_unrepairable: registry.counter("integrity.unrepairable"),
            scrub_entries_checked: registry.counter("scrub.entries_checked"),
            scrub_repairs: registry.counter("scrub.repairs"),
            scrub_flash_reads: registry.counter("scrub.flash_reads"),
            scrub_sweeps: registry.counter("scrub.sweeps"),
            registry,
        }
    }
}

/// The flash translation layer. See the module docs.
///
/// # Examples
///
/// ```
/// use ssdhammer_ftl::{Ftl, FtlConfig};
/// use ssdhammer_simkit::Lba;
///
/// # fn main() -> Result<(), ssdhammer_ftl::FtlError> {
/// let mut ftl = Ftl::tiny_for_tests(1)?;
/// let block = vec![0x42u8; 4096];
/// ftl.write(Lba(7), &block)?;
/// let mut out = vec![0u8; 4096];
/// ftl.read(Lba(7), &mut out)?;
/// assert_eq!(out, block);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Ftl {
    dram: DramModule,
    nand: FlashArray,
    config: FtlConfig,
    table: L2pTable,
    clock: SimClock,
    exported_lbas: u64,
    free_blocks: Vec<BlockId>,
    sealed_blocks: Vec<BlockId>,
    active_block: Option<BlockId>,
    valid: Vec<bool>,
    valid_count: Vec<u32>,
    /// Monotonic write sequence stamped into every page's OOB, so
    /// [`Ftl::recover`] can order versions of the same LBA.
    write_seq: u64,
    tel: FtlHandles,
    /// Shared fault-decision plane (taken from the NAND array at assembly).
    fault_plane: FaultPlane,
    /// False after a simulated power cut; every operation then fails with
    /// [`FtlError::PowerLoss`] until the device is remounted.
    powered: bool,
    /// True once a budget was exhausted; mutations fail with
    /// [`FtlError::ReadOnly`].
    read_only: bool,
    /// Blocks retired grown-bad so far, measured against
    /// [`FtlConfig::remap_budget`].
    remap_events: u32,
    /// Flash blocks reserved for the journal (empty when disabled).
    journal_region: Vec<BlockId>,
    /// Mutations logged but not yet checkpointed to flash.
    journal_buf: Vec<JournalEntry>,
    /// L2P protection plane (`None` when [`FtlConfig::integrity`] is Off).
    integrity: Option<IntegrityPlane>,
    /// DRAM-resident metadata mirrors (`None` unless
    /// [`FtlConfig::meta_resident`]).
    meta: Option<MetaPlane>,
    /// Next LBA the patrol scrubber will verify.
    scrub_cursor: u64,
    /// Next physical page the flash patrol will consider.
    patrol_cursor: u64,
}

/// OOB layout: little-endian LBA (8 bytes), write sequence (8 bytes), then
/// the DIF guard tag (4 bytes; zero when DIF is off).
fn encode_oob(lba: Lba, seq: u64, guard: u32) -> [u8; 20] {
    let mut oob = [0u8; 20];
    oob[..8].copy_from_slice(&lba.as_u64().to_le_bytes());
    oob[8..16].copy_from_slice(&seq.to_le_bytes());
    oob[16..].copy_from_slice(&guard.to_le_bytes());
    oob
}

fn decode_oob(oob: &[u8]) -> (Lba, u64, u32) {
    let lba = le_u64(oob, 0);
    let seq = le_u64(oob, 8);
    let guard = le_u32(oob, 16);
    (Lba(lba), seq, guard)
}

/// Decodes a raw 32-bit L2P word into the mapping it represents.
fn decode_entry(raw: u32) -> Option<Ppn> {
    (raw != crate::l2p::INVALID_ENTRY).then(|| Ppn(u64::from(raw)))
}

/// The DIF guard: CRC-32C over the LBA and the block payload.
fn dif_guard(lba: Lba, data: &[u8]) -> u32 {
    let mut state = !0u32;
    state = ssdhammer_simkit::crc32c_update(state, &lba.as_u64().to_le_bytes());
    state = ssdhammer_simkit::crc32c_update(state, data);
    !state
}

impl Ftl {
    /// Assembles an FTL over the given DRAM and flash. Initializes the L2P
    /// table in DRAM (all entries unmapped).
    ///
    /// # Errors
    ///
    /// Fails if the L2P table does not fit in the DRAM module, or on DRAM
    /// errors during initialization.
    ///
    /// # Panics
    ///
    /// Panics if `hammer_amplification` is zero or physical page numbers do
    /// not fit 32-bit entries.
    pub fn new(dram: DramModule, nand: FlashArray, config: FtlConfig) -> Result<Self, FtlError> {
        assert!(
            config.hammer_amplification >= 1,
            "amplification must be >= 1"
        );
        let mut dram = dram;
        let geometry = *nand.geometry();
        assert!(
            geometry.total_pages() < u64::from(crate::l2p::INVALID_ENTRY),
            "flash too large for 32-bit L2P entries"
        );
        let mut good = nand.good_blocks();
        let op = if config.overprovision_blocks == 0 {
            ((geometry.total_blocks() / 16) as u32).max(2)
        } else {
            config.overprovision_blocks
        };
        // Journaling reserves whole blocks off the top of the good list
        // (the highest ids, so data blocks keep their usual placement).
        let journal_reserve = if config.journal_checkpoint_every > 0 {
            config.journal_blocks as usize
        } else {
            0
        };
        assert!(
            good.len() > op as usize + journal_reserve,
            "overprovisioning and journal reservation exceed usable blocks"
        );
        let journal_region = good.split_off(good.len() - journal_reserve);
        let exported_lbas =
            (good.len() as u64 - u64::from(op)) * u64::from(geometry.pages_per_block);
        let table = L2pTable::new(config.l2p_base, exported_lbas, config.l2p_layout);
        let dram_cap = dram.mapping().geometry().total_bytes().as_u64();
        if config.l2p_base.as_u64() + table.size_bytes() > dram_cap {
            return Err(FtlError::Dram(DramError::OutOfRange {
                addr: config.l2p_base,
            }));
        }
        table.init(&mut dram)?;
        // The integrity plane claims the far end of DRAM — distant rows the
        // attacker's table-tuned hammer pattern does not reach.
        let integrity = if config.integrity == IntegrityMode::Off {
            None
        } else {
            let primary_end = config.l2p_base.as_u64() + table.size_bytes();
            let plane = IntegrityPlane::plan(
                config.integrity,
                table.size_bytes() / 4,
                primary_end,
                dram_cap,
            )
            .ok_or(FtlError::Dram(DramError::OutOfRange {
                addr: DramAddr(dram_cap),
            }))?;
            plane.init(&mut dram, crate::l2p::INVALID_ENTRY)?;
            Some(plane)
        };
        // The metadata mirrors pack into the L2P table's slot-padding tail
        // when it is free (linear layout leaves slots ≥ capacity unused, and
        // no integrity codes cover them): firmware lays metadata right
        // behind the entries, and that adjacency is what exposes it — the
        // metadata words share controller swizzle groups with live entries,
        // so their DRAM rows neighbor host-activatable rows. When the tail
        // is occupied (hashed layout) or covered (integrity on) or too
        // small, fall back to row-aligned regions after the table, below the
        // integrity plane's reservation at the top of DRAM.
        let meta = if config.meta_resident {
            let primary_end = config.l2p_base.as_u64() + table.size_bytes();
            let limit = integrity
                .as_ref()
                .map_or(dram_cap, |p| p.region_start().as_u64());
            let row_bytes = u64::from(dram.mapping().geometry().row_bytes);
            let tail_free =
                config.l2p_layout == L2pLayout::Linear && config.integrity == IntegrityMode::Off;
            let entries_end = config.l2p_base.as_u64() + exported_lbas * 4;
            let plane = tail_free
                .then(|| MetaPlane::plan_packed(geometry.total_blocks(), entries_end, primary_end))
                .flatten()
                .or_else(|| MetaPlane::plan(geometry.total_blocks(), primary_end, row_bytes, limit))
                .ok_or(FtlError::Dram(DramError::OutOfRange {
                    addr: DramAddr(dram_cap),
                }))?;
            plane.init(&mut dram)?;
            Some(plane)
        } else {
            None
        };
        // One registry for the whole sub-stack: the DRAM module's registry
        // becomes the FTL's, and the NAND array is rebound onto it.
        let registry = dram.shared_telemetry();
        let mut nand = nand;
        nand.attach_telemetry(&registry);
        let clock = dram.clock().clone();
        let total_pages = geometry.total_pages() as usize;
        let fault_plane = nand.fault_plane().clone();
        Ok(Ftl {
            dram,
            nand,
            config,
            table,
            clock,
            exported_lbas,
            free_blocks: good,
            sealed_blocks: Vec::new(),
            active_block: None,
            valid: vec![false; total_pages],
            valid_count: vec![0; geometry.total_blocks() as usize],
            write_seq: 0,
            tel: FtlHandles::bind(registry),
            fault_plane,
            powered: true,
            read_only: false,
            remap_events: 0,
            journal_region,
            journal_buf: Vec::new(),
            integrity,
            meta,
            scrub_cursor: 0,
            patrol_cursor: 0,
        })
    }

    /// Rebuilds an FTL from the flash array's out-of-band metadata, as after
    /// a power loss: every programmed page carries `(LBA, sequence)` in its
    /// OOB, and the highest sequence per LBA wins.
    ///
    /// Without a journal ([`FtlConfig::journal_checkpoint_every`] `== 0`),
    /// a limitation shared with journal-less real FTLs applies: TRIMs are
    /// not persisted, so blocks trimmed before the crash come back mapped
    /// to their last written content. With the journal enabled, checkpointed
    /// TRIMs (and all other mutations) replay exactly; only the at most
    /// `journal_checkpoint_every - 1` entries still buffered in (lost)
    /// DRAM are subject to the journal-less limitation.
    ///
    /// # Errors
    ///
    /// Same classes as [`Ftl::new`].
    pub fn recover(
        dram: DramModule,
        nand: FlashArray,
        config: FtlConfig,
    ) -> Result<Self, FtlError> {
        let mut ftl = Self::new(dram, nand, config)?;
        let geometry = *ftl.nand.geometry();
        // Winner version per LBA by sequence; `None` means "trimmed".
        let mut winners: std::collections::BTreeMap<u64, (u64, Option<Ppn>)> =
            std::collections::BTreeMap::new();
        let mut max_seq = 0u64;
        let blocks = ftl.nand.good_blocks();
        for &block in &blocks {
            if ftl.journal_region.contains(&block) {
                continue;
            }
            let filled = ftl.nand.next_page(block)?;
            let first = geometry.first_page(block).as_u64();
            for p in first..first + u64::from(filled) {
                let oob = ftl.nand.read_oob(Ppn(p))?;
                let (lba, seq, _) = decode_oob(&oob);
                if lba.as_u64() >= ftl.exported_lbas {
                    continue; // stale, foreign, or journal metadata
                }
                max_seq = max_seq.max(seq);
                let slot = winners.entry(lba.as_u64()).or_insert((seq, Some(Ppn(p))));
                if seq >= slot.0 {
                    *slot = (seq, Some(Ppn(p)));
                }
            }
        }
        // Journal replay: checkpointed mutations (notably TRIMs, which the
        // OOB scan cannot see) override scan winners by sequence order.
        let mut entries = Vec::new();
        for &block in &ftl.journal_region.clone() {
            let filled = ftl.nand.next_page(block)?;
            let first = geometry.first_page(block).as_u64();
            for p in first..first + u64::from(filled) {
                let oob = ftl.nand.read_oob(Ppn(p))?;
                let (marker, _, _) = decode_oob(&oob);
                if marker.as_u64() != journal::JOURNAL_LBA_MARKER {
                    continue; // burned or torn journal slot
                }
                // Recovery reads bypass fault injection (assisted mode):
                // remount happens under controller-managed retry voltages.
                let (page, _) = ftl.nand.read_page_assisted(Ppn(p))?;
                let decoded = journal::decode_page_with(&page, ftl.config.journal_verify_crc);
                if decoded.torn {
                    ftl.tel.registry.trace(
                        ftl.clock.now(),
                        "ftl.journal.torn_tail",
                        format!(
                            "journal page {p}: torn tail truncated after {} records",
                            decoded.entries.len()
                        ),
                    );
                }
                entries.extend(decoded.entries);
            }
        }
        entries.sort_by_key(|e| e.seq);
        let replayed = entries.len() as u64;
        for e in entries {
            if e.lba >= ftl.exported_lbas {
                continue;
            }
            // Guard against corrupted journal payloads: a mapping outside
            // the array is treated as a trim rather than indexed blindly.
            let mapped = (e.ppn != crate::l2p::INVALID_ENTRY
                && u64::from(e.ppn) < geometry.total_pages())
            .then(|| Ppn(u64::from(e.ppn)));
            max_seq = max_seq.max(e.seq);
            let slot = winners.entry(e.lba).or_insert((e.seq, mapped));
            if e.seq >= slot.0 {
                *slot = (e.seq, mapped);
            }
        }
        ftl.tel.journal_replayed.add(replayed);
        for (lba, (_, ppn)) in &winners {
            if let Some(ppn) = ppn {
                ftl.l2p_set(Lba(*lba), Some(*ppn))?;
                ftl.mark_valid(*ppn);
            }
        }
        ftl.write_seq = max_seq + 1;
        // Block bookkeeping: empty blocks are free, everything else sealed
        // (a fresh active block is opened on the next write). The journal
        // region stays reserved.
        ftl.free_blocks.clear();
        ftl.sealed_blocks.clear();
        ftl.active_block = None;
        for &block in &blocks {
            if ftl.journal_region.contains(&block) {
                continue;
            }
            if ftl.nand.next_page(block)? == 0 {
                ftl.free_blocks.push(block);
            } else {
                ftl.sealed_blocks.push(block);
            }
        }
        Ok(ftl)
    }

    /// Tears the FTL apart into its substrates — used by crash-recovery
    /// tests and experiments ("pull the power, keep the flash").
    #[must_use]
    pub fn into_parts(self) -> (DramModule, FlashArray) {
        (self.dram, self.nand)
    }

    /// A small fully-wired FTL (tiny DRAM + tiny flash, linear mappings, no
    /// timing) for unit tests and doc examples.
    ///
    /// # Errors
    ///
    /// Same classes as [`Ftl::new`] (never fails for the fixed tiny
    /// geometry; the `Result` exists so callers keep a panic-free path).
    pub fn tiny_for_tests(seed: u64) -> Result<Self, FtlError> {
        use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
        use ssdhammer_flash::FlashGeometry;
        let clock = SimClock::new();
        let dram = DramModule::builder(DramGeometry::tiny_test())
            .profile(ModuleProfile::invulnerable())
            .mapping(MappingKind::Linear)
            .seed(seed)
            .without_timing()
            .build(clock.clone());
        let nand = FlashArray::new(FlashGeometry::tiny_test(), clock, seed);
        Ftl::new(dram, nand, FtlConfig::default())
    }

    /// Number of LBAs exported to the host.
    #[must_use]
    pub fn capacity_lbas(&self) -> u64 {
        self.exported_lbas
    }

    /// The L2P table descriptor (layout arithmetic).
    #[must_use]
    pub fn table(&self) -> &L2pTable {
        &self.table
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Aggregate counters.
    #[must_use]
    pub fn telemetry(&self) -> FtlTelemetry {
        FtlTelemetry {
            host_reads: self.tel.host_reads.get(),
            host_writes: self.tel.host_writes.get(),
            host_trims: self.tel.host_trims.get(),
            gc_runs: self.tel.gc_runs.get(),
            gc_relocated: self.tel.gc_relocated.get(),
            read_refreshes: self.tel.read_refreshes.get(),
            l2p_reads: self.tel.l2p_reads.get(),
            l2p_writes: self.tel.l2p_writes.get(),
            redirections_detected: self.tel.redirections_detected.get(),
            read_retries: self.tel.read_retries.get(),
            ecc_corrected: self.tel.ecc_corrected.get(),
            silent_corruptions: self.tel.silent_corruptions.get(),
            uncorrectable_reads: self.tel.uncorrectable_reads.get(),
            bad_block_remaps: self.tel.bad_block_remaps.get(),
            journal_checkpoints: self.tel.journal_checkpoints.get(),
            journal_replayed: self.tel.journal_replayed.get(),
            power_losses: self.tel.power_losses.get(),
            read_only: self.tel.read_only.get(),
            integrity_detected: self.tel.integrity_detected.get(),
            integrity_repaired: self.tel.integrity_repaired.get(),
            integrity_mirror_repairs: self.tel.integrity_mirror_repairs.get(),
            integrity_unrepairable: self.tel.integrity_unrepairable.get(),
            scrub_entries_checked: self.tel.scrub_entries_checked.get(),
            scrub_repairs: self.tel.scrub_repairs.get(),
            scrub_flash_reads: self.tel.scrub_flash_reads.get(),
            scrub_sweeps: self.tel.scrub_sweeps.get(),
        }
    }

    /// The shared registry this FTL (and its DRAM and NAND) records into.
    #[must_use]
    pub fn shared_telemetry(&self) -> Telemetry {
        self.tel.registry.clone()
    }

    /// Rebinds the FTL and both substrates onto `telemetry` (e.g. an `Ssd`'s
    /// one shared registry). Counts recorded before the switch stay in the
    /// old registry, so attach before use.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.dram.attach_telemetry(telemetry);
        self.nand.attach_telemetry(telemetry);
        self.tel = FtlHandles::bind(telemetry.clone());
    }

    /// The DRAM module (experiments inspect flips and telemetry through it).
    #[must_use]
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Mutable DRAM access for experiment setup/verification.
    pub fn dram_mut(&mut self) -> &mut DramModule {
        &mut self.dram
    }

    /// The NAND array (read-only view).
    #[must_use]
    pub fn nand(&self) -> &FlashArray {
        &self.nand
    }

    /// The DRAM-resident metadata plane, when
    /// [`FtlConfig::meta_resident`] enabled it.
    #[must_use]
    pub fn meta(&self) -> Option<&MetaPlane> {
        self.meta.as_ref()
    }

    /// Reads word `idx` of metadata mirror `kind` through the device's
    /// timed DRAM path — the firmware consulting its own tables, which is
    /// how a hammered metadata bit becomes an observable failure.
    ///
    /// # Errors
    ///
    /// [`FtlError::Dram`] when the plane is disabled, `idx` is out of
    /// range, or the DRAM word is ECC-uncorrectable.
    pub fn meta_word_read(&mut self, kind: MetaKind, idx: u64) -> Result<u32, FtlError> {
        let addr = self
            .meta
            .and_then(|plane| plane.word_addr(kind, idx))
            .ok_or(FtlError::Dram(DramError::OutOfRange {
                addr: DramAddr(u64::MAX),
            }))?;
        Ok(self.dram.read_u32(addr)?)
    }

    /// The shared simulation clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn check_lba(&self, lba: Lba) -> Result<(), FtlError> {
        if lba.as_u64() >= self.exported_lbas {
            Err(FtlError::OutOfRange { lba })
        } else {
            Ok(())
        }
    }

    /// L2P read on the host path, with configured activation amplification.
    fn amplified_get(&mut self, lba: Lba) -> Result<Option<Ppn>, FtlError> {
        self.tel.l2p_reads.incr();
        let entry = self.get_verified(lba)?;
        let amp = u64::from(self.config.hammer_amplification);
        if amp > 1 {
            self.dram
                .force_activations(self.table.entry_addr(lba), amp - 1)?;
        }
        Ok(entry)
    }

    /// L2P update through the integrity plane: writes the primary entry,
    /// then its code byte and mirror copy (when protection is on).
    fn l2p_set(&mut self, lba: Lba, ppn: Option<Ppn>) -> Result<(), FtlError> {
        self.table.set(&mut self.dram, lba, ppn)?;
        if let Some(plane) = self.integrity {
            let raw = ppn.map_or(crate::l2p::INVALID_ENTRY, |p| p.as_u64() as u32);
            plane.record(&mut self.dram, self.table.slot_of(lba), raw)?;
        }
        Ok(())
    }

    /// Fetches and integrity-verifies one entry through the device path.
    /// A primary word even DRAM ECC gave up on is restored from the mirror
    /// in [`IntegrityMode::Correct`].
    fn get_verified(&mut self, lba: Lba) -> Result<Option<Ppn>, FtlError> {
        let entry = match self.table.get(&mut self.dram, lba) {
            Ok(e) => e,
            Err(err @ DramError::Uncorrectable { .. }) => {
                let Some(plane) = self.integrity else {
                    return Err(err.into());
                };
                let slot = self.table.slot_of(lba);
                let addr = self.table.entry_addr(lba);
                return match plane.restore(&mut self.dram, slot, addr)? {
                    VerifyOutcome::MirrorRepaired(raw) => {
                        self.tel.integrity_detected.incr();
                        self.tel.integrity_mirror_repairs.incr();
                        Ok(decode_entry(raw))
                    }
                    _ => {
                        self.tel.integrity_detected.incr();
                        self.tel.integrity_unrepairable.incr();
                        self.engage_read_only("L2P entry unrepairable (ECC + mirror)");
                        Err(FtlError::L2pIntegrity { lba })
                    }
                };
            }
            Err(e) => return Err(e.into()),
        };
        self.verify_entry(lba, entry)
    }

    /// Applies integrity-plane policy to a just-fetched entry: verify,
    /// repair (in [`IntegrityMode::Correct`]), or fail loudly. Unrepairable
    /// divergence degrades the device to read-only — the FTL refuses to
    /// keep serving mappings it cannot trust.
    fn verify_entry(&mut self, lba: Lba, entry: Option<Ppn>) -> Result<Option<Ppn>, FtlError> {
        let Some(plane) = self.integrity else {
            return Ok(entry);
        };
        let raw = entry.map_or(crate::l2p::INVALID_ENTRY, |p| p.as_u64() as u32);
        let slot = self.table.slot_of(lba);
        let addr = self.table.entry_addr(lba);
        match plane.verify(&mut self.dram, slot, addr, raw)? {
            VerifyOutcome::Clean => Ok(entry),
            VerifyOutcome::Detected => {
                self.tel.integrity_detected.incr();
                self.tel.registry.trace(
                    self.clock.now(),
                    "ftl.integrity",
                    format!("lba {} entry failed verification", lba.as_u64()),
                );
                Err(FtlError::L2pIntegrity { lba })
            }
            VerifyOutcome::Repaired(fixed) => {
                self.tel.integrity_detected.incr();
                self.tel.integrity_repaired.incr();
                Ok(decode_entry(fixed))
            }
            VerifyOutcome::MirrorRepaired(fixed) => {
                self.tel.integrity_detected.incr();
                self.tel.integrity_mirror_repairs.incr();
                self.tel.registry.trace(
                    self.clock.now(),
                    "ftl.integrity",
                    format!("lba {} entry restored from mirror", lba.as_u64()),
                );
                Ok(decode_entry(fixed))
            }
            VerifyOutcome::Unrepairable => {
                self.tel.integrity_detected.incr();
                self.tel.integrity_unrepairable.incr();
                self.engage_read_only("L2P entry and mirror diverged beyond repair");
                Err(FtlError::L2pIntegrity { lba })
            }
        }
    }

    /// Reads one block. Returns what the mapping resolved to.
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs, bad buffer sizes, or substrate errors.
    pub fn read(&mut self, lba: Lba, buf: &mut [u8]) -> Result<ReadOutcome, FtlError> {
        self.check_lba(lba)?;
        if buf.len() != BLOCK_SIZE {
            return Err(FtlError::BadBufferLen { got: buf.len() });
        }
        if !self.powered {
            return Err(FtlError::PowerLoss);
        }
        self.tel.host_reads.incr();
        match self.amplified_get(lba)? {
            None => {
                buf.fill(0);
                if self.config.unmapped_fast_path {
                    Ok(ReadOutcome::Unmapped)
                } else {
                    let completed = self.nand.charge_dummy_read(lba.as_u64());
                    Ok(ReadOutcome::SlowUnmapped { completed })
                }
            }
            Some(ppn) if ppn.as_u64() >= self.nand.geometry().total_pages() => {
                buf.fill(0);
                self.tel.redirections_detected.incr();
                self.tel.registry.trace(
                    self.clock.now(),
                    "ftl.redirection",
                    format!(
                        "lba {} resolved to wild entry {:#x}",
                        lba.as_u64(),
                        ppn.as_u64()
                    ),
                );
                Ok(ReadOutcome::Wild {
                    entry: ppn.as_u64(),
                })
            }
            Some(ppn) => {
                let completed = self.read_page_recovered_into(ppn, buf)?;
                if self.config.dif {
                    let oob = self.nand.read_oob(ppn)?;
                    let (_, _, stored_guard) = decode_oob(&oob);
                    if stored_guard != dif_guard(lba, buf) {
                        // The page's guard was computed for a different
                        // (LBA, data) pair: a misdirected mapping (or
                        // corrupted data). Fail loudly, leak nothing.
                        buf.fill(0);
                        self.tel.redirections_detected.incr();
                        self.tel.registry.trace(
                            self.clock.now(),
                            "ftl.redirection",
                            format!("lba {} guard mismatch at {ppn}", lba.as_u64()),
                        );
                        return Ok(ReadOutcome::GuardMismatch { ppn });
                    }
                }
                // Stay ahead of read disturb: relocate heavily-read blocks.
                if let Some(threshold) = self.config.read_refresh_threshold {
                    let block = self.nand.geometry().block_of(ppn);
                    if self.nand.reads_since_erase(block)? >= threshold {
                        // A hot page may sit in the active block; seal it so
                        // relocation targets a fresh one.
                        if self.active_block == Some(block) {
                            self.active_block = None;
                        }
                        self.relocate_and_reclaim(block)?;
                        self.tel.read_refreshes.incr();
                    }
                }
                Ok(ReadOutcome::Mapped { ppn, completed })
            }
        }
    }

    /// Writes one block out-of-place and updates the mapping.
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs, bad buffer sizes, [`FtlError::DeviceFull`],
    /// [`FtlError::ReadOnly`], [`FtlError::PowerLoss`], or substrate
    /// errors.
    pub fn write(&mut self, lba: Lba, data: &[u8]) -> Result<SimTime, FtlError> {
        self.check_lba(lba)?;
        if data.len() != BLOCK_SIZE {
            return Err(FtlError::BadBufferLen { got: data.len() });
        }
        self.check_mutable()?;
        self.tel.host_writes.incr();
        let old = self.amplified_get(lba)?;
        let guard = if self.config.dif {
            dif_guard(lba, data)
        } else {
            0
        };
        let (ppn, seq, completed) = self.program_relocatable(lba, data, guard)?;
        self.tel.l2p_writes.incr();
        self.l2p_set(lba, Some(ppn))?;
        self.mark_valid(ppn);
        if let Some(old_ppn) = old {
            self.mark_invalid(old_ppn);
        }
        self.journal_record(lba, seq, Some(ppn))?;
        self.maybe_gc()?;
        Ok(completed)
    }

    /// Unmaps one block (NVMe deallocate / TRIM).
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs, [`FtlError::ReadOnly`], [`FtlError::PowerLoss`],
    /// or substrate errors.
    pub fn trim(&mut self, lba: Lba) -> Result<(), FtlError> {
        self.check_lba(lba)?;
        self.check_mutable()?;
        self.tel.host_trims.incr();
        let old = self.amplified_get(lba)?;
        // Trims consume a sequence number so the journal can order them
        // against writes during replay.
        let seq = self.write_seq;
        self.write_seq += 1;
        self.tel.l2p_writes.incr();
        self.l2p_set(lba, None)?;
        if let Some(old_ppn) = old {
            self.mark_invalid(old_ppn);
        }
        self.journal_record(lba, seq, None)?;
        Ok(())
    }

    /// Issues `requests` read requests round-robin over `lbas` at
    /// `request_rate` requests/second, aggregated directly into DRAM row
    /// activations (the fast path for attack workloads spanning simulated
    /// minutes to hours).
    ///
    /// Each request activates its entry's DRAM row `hammer_amplification`
    /// times, exactly like the per-request path.
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs or DRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `lbas` is empty or the rate is not positive.
    pub fn hammer_reads(
        &mut self,
        lbas: &[Lba],
        requests: u64,
        request_rate: f64,
    ) -> Result<HammerReport, FtlError> {
        self.hammer_reads_with(lbas, requests, request_rate, HammerOptions::default())
    }

    /// [`Ftl::hammer_reads`] with per-burst [`HammerOptions`] (open-row
    /// dwell, pattern telemetry label) forwarded to the DRAM layer. Default
    /// options are bit-identical to [`Ftl::hammer_reads`].
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs or DRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `lbas` is empty or the rate is not positive.
    pub fn hammer_reads_with(
        &mut self,
        lbas: &[Lba],
        requests: u64,
        request_rate: f64,
        opts: HammerOptions,
    ) -> Result<HammerReport, FtlError> {
        assert!(!lbas.is_empty(), "need at least one LBA");
        for &lba in lbas {
            self.check_lba(lba)?;
        }
        let addrs: Vec<DramAddr> = lbas.iter().map(|&l| self.table.entry_addr(l)).collect();
        let amp = u64::from(self.config.hammer_amplification);
        self.tel.host_reads.add(requests);
        self.tel.l2p_reads.add(requests);
        let report =
            self.dram
                .run_hammer_with(&addrs, requests * amp, request_rate * amp as f64, opts)?;
        Ok(report)
    }

    /// Reads `lba`'s L2P entry through the device path: the DRAM row is
    /// activated and ECC (when configured) is applied — including
    /// correction-with-scrub and uncorrectable-error reporting. This is what
    /// the firmware itself sees.
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs; [`FtlError::Dram`] on ECC-uncorrectable entries;
    /// [`FtlError::L2pIntegrity`] when verification fails without repair.
    pub fn entry_read(&mut self, lba: Lba) -> Result<Option<Ppn>, FtlError> {
        self.check_lba(lba)?;
        self.tel.l2p_reads.incr();
        self.get_verified(lba)
    }

    /// One patrol-scrub chunk: verifies (and, per the integrity mode and
    /// DRAM ECC configuration, repairs) `entries` L2P entries from a
    /// rotating cursor through the device read path, then issues up to
    /// `flash_reads` patrol reads over mapped pages. Entries that fail
    /// verification terminally are counted by the verification path and
    /// skipped — a patrol pass never aborts mid-sweep beyond what policy
    /// itself (read-only degradation) dictates.
    ///
    /// # Errors
    ///
    /// [`FtlError::PowerLoss`] when offline, or substrate range errors.
    pub fn scrub_chunk(&mut self, entries: u64, flash_reads: u32) -> Result<(), FtlError> {
        if !self.powered {
            return Err(FtlError::PowerLoss);
        }
        self.crash_point("ftl.crash.scrub_repair")?;
        let repairs_before = self.repairs_total();
        for _ in 0..entries.min(self.exported_lbas) {
            let lba = Lba(self.scrub_cursor);
            self.scrub_cursor += 1;
            if self.scrub_cursor >= self.exported_lbas {
                self.scrub_cursor = 0;
                self.tel.scrub_sweeps.incr();
            }
            self.tel.scrub_entries_checked.incr();
            self.tel.l2p_reads.incr();
            match self.get_verified(lba) {
                Ok(_) => {}
                // Counted (and possibly degraded to read-only) by the
                // verification path; the sweep continues.
                Err(FtlError::L2pIntegrity { .. } | FtlError::Dram(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let total_pages = self.nand.geometry().total_pages();
        let mut issued = 0u32;
        let mut scanned = 0u64;
        let mut page = vec![0u8; self.nand.geometry().page_bytes as usize];
        while issued < flash_reads && scanned < total_pages {
            let ppn = Ppn(self.patrol_cursor);
            self.patrol_cursor = (self.patrol_cursor + 1) % total_pages;
            scanned += 1;
            if !self.valid[ppn.as_u64() as usize] {
                continue;
            }
            issued += 1;
            self.tel.scrub_flash_reads.incr();
            match self.read_page_recovered_into(ppn, &mut page) {
                Ok(_) => {}
                // Already counted in `recovery.uncorrectable_reads`; the
                // host read path will surface it to the owner.
                Err(FtlError::Uncorrectable { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.tel
            .scrub_repairs
            .add(self.repairs_total() - repairs_before);
        Ok(())
    }

    /// Sum of every repair the stack can attribute to reads (DRAM ECC
    /// scrubs, flash ECC recoveries, integrity-plane repairs) — sampled
    /// around a scrub chunk to charge `scrub.repairs`.
    fn repairs_total(&self) -> u64 {
        self.dram.telemetry().ecc_corrected
            + self.tel.ecc_corrected.get()
            + self.tel.integrity_repaired.get()
            + self.tel.integrity_mirror_repairs.get()
    }

    /// Ground-truth mapping lookup that does not disturb the device (no
    /// activation, no ECC, no time). For experiments and tests.
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs or DRAM errors.
    pub fn peek_mapping(&self, lba: Lba) -> Result<Option<Ppn>, FtlError> {
        self.check_lba(lba)?;
        let mut buf = [0u8; 4];
        self.dram.peek(self.table.entry_addr(lba), &mut buf)?;
        let raw = u32::from_le_bytes(buf);
        Ok((raw != crate::l2p::INVALID_ENTRY).then(|| Ppn(u64::from(raw))))
    }

    /// Current number of free blocks (diagnostics).
    #[must_use]
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
    }

    /// Write amplification so far: flash programs per host write.
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        let host_writes = self.tel.host_writes.get();
        if host_writes == 0 {
            0.0
        } else {
            self.nand.telemetry().programs as f64 / host_writes as f64
        }
    }

    /// True once the device degraded to read-only mode.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Blocks retired grown-bad so far (against
    /// [`FtlConfig::remap_budget`]).
    #[must_use]
    pub fn remap_events(&self) -> u32 {
        self.remap_events
    }

    /// The fault plane this FTL (and its NAND) consults.
    #[must_use]
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.fault_plane
    }

    /// The L2P integrity plane, when protection is enabled (experiments
    /// corrupt specific plane addresses through the DRAM backdoor).
    #[must_use]
    pub fn integrity_plane(&self) -> Option<&IntegrityPlane> {
        self.integrity.as_ref()
    }

    /// Journal entries logged but not yet checkpointed to flash (lost on
    /// power cut).
    #[must_use]
    pub fn journal_pending(&self) -> usize {
        self.journal_buf.len()
    }

    /// Forces any buffered journal entries out to flash (the NVMe Flush
    /// path). No-op when journaling is disabled.
    ///
    /// # Errors
    ///
    /// [`FtlError::PowerLoss`] when offline, or substrate errors.
    pub fn flush(&mut self) -> Result<(), FtlError> {
        if !self.powered {
            return Err(FtlError::PowerLoss);
        }
        self.crash_point("ftl.crash.l2p_flush")?;
        self.checkpoint_journal()
    }

    /// Byte-exact dump of the exported L2P table (4 bytes per LBA, little
    /// endian), read through the non-disturbing DRAM backdoor. Used by
    /// determinism and replay tests to compare tables across remounts.
    ///
    /// # Errors
    ///
    /// DRAM range errors only (the table was validated to fit at
    /// construction).
    pub fn l2p_snapshot(&self) -> Result<Vec<u8>, FtlError> {
        let mut entries = Vec::new();
        self.table
            .peek_batch(&self.dram, (0..self.exported_lbas).map(Lba), &mut entries)?;
        let mut out = Vec::with_capacity(entries.len() * 4);
        for raw in entries {
            out.extend_from_slice(&raw.to_le_bytes());
        }
        Ok(out)
    }

    /// Batch counterpart of [`Ftl::peek_mapping`]: snapshots many mappings
    /// through the non-disturbing DRAM backdoor in one call.
    ///
    /// # Errors
    ///
    /// Out-of-range LBAs or DRAM errors.
    pub fn peek_mappings(&self, lbas: &[Lba]) -> Result<Vec<Option<Ppn>>, FtlError> {
        for &lba in lbas {
            self.check_lba(lba)?;
        }
        let mut raw = Vec::new();
        self.table
            .peek_batch(&self.dram, lbas.iter().copied(), &mut raw)?;
        Ok(raw
            .into_iter()
            .map(|r| (r != crate::l2p::INVALID_ENTRY).then(|| Ppn(u64::from(r))))
            .collect())
    }

    // ---- internals ---------------------------------------------------------

    /// Gate for mutations: offline and read-only states reject, and the
    /// `ftl.power_loss` fault site may cut power *now* (taking the device
    /// offline until [`Ftl::recover`]).
    fn check_mutable(&mut self) -> Result<(), FtlError> {
        if !self.powered {
            return Err(FtlError::PowerLoss);
        }
        if self.read_only {
            return Err(FtlError::ReadOnly);
        }
        if self.fault_plane.fires("ftl.power_loss") {
            self.powered = false;
            self.tel.power_losses.incr();
            self.tel.registry.trace(
                self.clock.now(),
                "ftl.power_loss",
                "power cut; device offline until remount",
            );
            return Err(FtlError::PowerLoss);
        }
        Ok(())
    }

    /// Consults one [`CRASH_SITES`] site: when it fires, power is cut at
    /// this exact point (same semantics as the `ftl.power_loss` site) and
    /// the in-flight operation surfaces [`FtlError::PowerLoss`].
    fn crash_point(&mut self, site: &'static str) -> Result<(), FtlError> {
        if self.fault_plane.fires(site) {
            self.powered = false;
            self.tel.power_losses.incr();
            self.tel.registry.trace(
                self.clock.now(),
                "ftl.power_loss",
                format!("power cut at {site}"),
            );
            return Err(FtlError::PowerLoss);
        }
        Ok(())
    }

    fn engage_read_only(&mut self, reason: &str) {
        if !self.read_only {
            self.read_only = true;
            self.tel.read_only.set(1.0);
            self.tel
                .registry
                .trace(self.clock.now(), "ftl.read_only", reason.to_string());
        }
    }

    /// The read-recovery ladder: re-issue failed media reads up to
    /// [`FtlConfig::read_retry_max`] times; when the ladder is exhausted,
    /// classify the residual flipped bits with the SEC-DED model —
    /// correctable errors are served via an assisted read, detectable ones
    /// surface as [`FtlError::Uncorrectable`], and beyond-detection flips
    /// come back as silently wrong data (DIF, when enabled, is the last
    /// line of defense).
    fn read_page_recovered(&mut self, ppn: Ppn) -> Result<(Box<[u8]>, SimTime), FtlError> {
        let mut data = vec![0u8; self.nand.geometry().page_bytes as usize].into_boxed_slice();
        let done = self.read_page_recovered_into(ppn, &mut data)?;
        Ok((data, done))
    }

    /// [`Ftl::read_page_recovered`] into a caller-provided buffer,
    /// avoiding the per-read page allocation on the hot host-read path.
    fn read_page_recovered_into(&mut self, ppn: Ppn, buf: &mut [u8]) -> Result<SimTime, FtlError> {
        let mut attempt = 0u32;
        loop {
            match self.nand.read_page_into(ppn, buf) {
                Ok(done) => return Ok(done),
                Err(FlashError::ReadFailed { bits, .. }) => {
                    if attempt < self.config.read_retry_max {
                        attempt += 1;
                        self.tel.read_retries.incr();
                        continue;
                    }
                    match EccOutcome::classify(bits as usize) {
                        outcome if outcome.returns_clean_data() => {
                            let done = self.nand.read_page_assisted_into(ppn, buf)?;
                            self.tel.ecc_corrected.incr();
                            return Ok(done);
                        }
                        EccOutcome::SilentCorruption => {
                            let done = self.nand.read_page_assisted_into(ppn, buf)?;
                            self.tel.silent_corruptions.incr();
                            let bit = derive_seed(
                                self.fault_plane.seed(),
                                "silent-corruption",
                                ppn.as_u64(),
                            ) % (buf.len() as u64 * 8);
                            buf[(bit / 8) as usize] ^= 1 << (bit % 8);
                            return Ok(done);
                        }
                        _ => {
                            self.tel.uncorrectable_reads.incr();
                            self.tel.registry.trace(
                                self.clock.now(),
                                "ftl.uncorrectable",
                                format!("{ppn} unreadable after {attempt} retries"),
                            );
                            return Err(FtlError::Uncorrectable { ppn });
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Allocates a page and programs it, stamping a fresh write sequence.
    /// A failed program burns the page slot; the block is retired
    /// (grown-bad remap) and the write re-issued elsewhere. Returns the
    /// programmed page, its sequence, and the completion time.
    fn program_relocatable(
        &mut self,
        lba: Lba,
        data: &[u8],
        guard: u32,
    ) -> Result<(Ppn, u64, SimTime), FtlError> {
        loop {
            let ppn = self.allocate_ppn()?;
            let seq = self.write_seq;
            self.write_seq += 1;
            match self
                .nand
                .program_page(ppn, data, &encode_oob(lba, seq, guard))
            {
                Ok(done) => return Ok((ppn, seq, done)),
                Err(FlashError::ProgramFailed { .. }) => {
                    let block = self.nand.geometry().block_of(ppn);
                    self.handle_program_failure(block)?;
                    // Loop: allocate_ppn now targets a different block.
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Retires a block whose program failed: evacuate its still-readable
    /// valid pages, mark it grown-bad, and charge the remap budget.
    fn handle_program_failure(&mut self, block: BlockId) -> Result<(), FtlError> {
        if self.active_block == Some(block) {
            self.active_block = None;
        }
        self.free_blocks.retain(|&b| b != block);
        if let Some(idx) = self.sealed_blocks.iter().position(|&b| b == block) {
            self.sealed_blocks.swap_remove(idx);
        }
        self.relocate_valid_pages(block)?;
        self.nand.mark_bad(block)?;
        self.note_block_retired(block, "program failure")
    }

    /// Counts one grown-bad retirement and degrades to read-only past the
    /// budget. In-flight operations are allowed to complete; subsequent
    /// mutations are rejected.
    fn note_block_retired(&mut self, block: BlockId, cause: &str) -> Result<(), FtlError> {
        // The NAND already holds the grown-bad mark; a cut here leaves a
        // half-finished retirement for recovery to reconcile.
        self.crash_point("ftl.crash.bad_block_remap")?;
        self.remap_events += 1;
        self.tel.bad_block_remaps.incr();
        self.tel.registry.trace(
            self.clock.now(),
            "ftl.bad_block",
            format!("block {} retired ({cause})", block.as_u64()),
        );
        self.meta_mark_bad(block);
        if self.remap_events > self.config.remap_budget {
            self.engage_read_only("remap budget exhausted");
        }
        Ok(())
    }

    /// Disables the metadata mirror and leaves a trace event saying why.
    /// The authoritative state lives in the FTL proper, so losing the
    /// mirror is survivable — but a *silently stale* mirror would poison
    /// the next recovery scan, so it is dropped the moment a write-through
    /// fails rather than left behind.
    fn drop_meta_mirror(&mut self, cause: &str) {
        self.meta = None;
        self.tel
            .registry
            .trace(self.clock.now(), "ftl.meta_mirror_lost", cause.to_string());
    }

    /// Write-through of the grown-bad-block mirror ([`crate::meta`]). A
    /// failed write disables the mirror (see [`Self::drop_meta_mirror`]).
    fn meta_mark_bad(&mut self, block: BlockId) {
        let Some(plane) = self.meta else { return };
        if let Some(addr) = plane.word_addr(MetaKind::BadBlock, block.as_u64()) {
            let word = MetaPlane::bad_word(block.as_u64() as u32, true);
            if self.dram.write_u32(addr, word).is_err() {
                self.drop_meta_mirror("bad-block mirror write failed");
            }
        }
    }

    /// Write-through of the wear-counter mirror after an erase.
    fn meta_note_wear(&mut self, block: BlockId) {
        let Some(plane) = self.meta else { return };
        let Ok(pe) = self.nand.pe_cycles(block) else {
            return;
        };
        if let Some(addr) = plane.word_addr(MetaKind::Wear, block.as_u64()) {
            let word = MetaPlane::wear_word(block.as_u64() as u32, pe);
            if self.dram.write_u32(addr, word).is_err() {
                self.drop_meta_mirror("wear mirror write failed");
            }
        }
    }

    /// Write-through of the journal write-cache ring: the entry is encoded
    /// into slot `seq % JOURNAL_SLOTS` as four words (LBA, sequence, PPN,
    /// slot tag).
    fn meta_journal_write(&mut self, entry: &JournalEntry) {
        let Some(plane) = self.meta else { return };
        let slot = entry.seq % crate::meta::JOURNAL_SLOTS;
        let base = slot * crate::meta::JOURNAL_SLOT_WORDS;
        let words = [
            entry.lba as u32,
            entry.seq as u32,
            entry.ppn,
            0x4A50_0000 | slot as u32,
        ];
        for (i, word) in words.into_iter().enumerate() {
            if let Some(addr) = plane.word_addr(MetaKind::Journal, base + i as u64) {
                if self.dram.write_u32(addr, word).is_err() {
                    // A half-written journal slot is worse than none.
                    self.drop_meta_mirror("journal mirror write failed");
                    return;
                }
            }
        }
    }

    /// Moves every valid page out of `block` (without erasing it). Pages
    /// that fail the whole read-recovery ladder are dropped: their LBA is
    /// unmapped — honest data loss — rather than left pointing at a dead
    /// block.
    fn relocate_valid_pages(&mut self, block: BlockId) -> Result<(), FtlError> {
        let first = self.nand.geometry().first_page(block).as_u64();
        for p in first..first + u64::from(self.nand.geometry().pages_per_block) {
            if !self.valid[p as usize] {
                continue;
            }
            let src = Ppn(p);
            let oob = self.nand.read_oob(src)?;
            let (lba, _, guard) = decode_oob(&oob);
            match self.read_page_recovered(src) {
                Ok((data, _)) => {
                    // No journal entry: the relocated page's OOB (with its
                    // fresh sequence) already records this mapping for the
                    // recovery scan.
                    let (dst, _, _) = self.program_relocatable(lba, &data, guard)?;
                    self.tel.l2p_writes.incr();
                    self.l2p_set(lba, Some(dst))?;
                    self.mark_invalid(src);
                    self.mark_valid(dst);
                    self.tel.gc_relocated.incr();
                }
                Err(FtlError::Uncorrectable { .. }) => {
                    let seq = self.write_seq;
                    self.write_seq += 1;
                    self.tel.l2p_writes.incr();
                    self.l2p_set(lba, None)?;
                    self.mark_invalid(src);
                    self.journal_record(lba, seq, None)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Logs one L2P mutation (`ppn == None` encodes a trim) and
    /// checkpoints the buffer once it reaches the configured interval.
    fn journal_record(&mut self, lba: Lba, seq: u64, ppn: Option<Ppn>) -> Result<(), FtlError> {
        if self.config.journal_checkpoint_every == 0 {
            return Ok(());
        }
        let entry = JournalEntry {
            lba: lba.as_u64(),
            seq,
            ppn: ppn.map_or(crate::l2p::INVALID_ENTRY, |p| p.as_u64() as u32),
        };
        // A cut here lands mid write-through: the DRAM mirror never sees
        // this entry, and neither does the journal buffer — the mutation
        // itself (L2P update, programmed page) already happened.
        self.crash_point("ftl.crash.meta_mirror")?;
        self.meta_journal_write(&entry);
        self.journal_buf.push(entry);
        if self.journal_buf.len() >= self.config.journal_checkpoint_every as usize {
            self.checkpoint_journal()?;
        }
        Ok(())
    }

    /// Writes buffered journal entries to the reserved region, page by
    /// page. Exhausting the region engages read-only mode (graceful
    /// degradation) rather than erroring: the triggering operation itself
    /// already succeeded.
    fn checkpoint_journal(&mut self) -> Result<(), FtlError> {
        if self.journal_buf.is_empty() {
            return Ok(());
        }
        let page_bytes = self.nand.geometry().page_bytes as usize;
        let per_page = journal::entries_per_page(page_bytes);
        while !self.journal_buf.is_empty() {
            let Some(ppn) = self.next_journal_ppn()? else {
                self.engage_read_only("journal region exhausted");
                return Ok(());
            };
            let take = per_page.min(self.journal_buf.len());
            let marker = encode_oob(Lba(journal::JOURNAL_LBA_MARKER), 0, 0);
            if self.fault_plane.fires("ftl.crash.journal_append") {
                // A mid-append power cut: the page header and all but the
                // final record reach the cells, the record's tail does
                // not. Recovery must detect the torn record by its CRC and
                // truncate it rather than replay garbage.
                let torn = journal::encode_page_torn(&self.journal_buf[..take], page_bytes);
                match self.nand.program_page(ppn, &torn, &marker) {
                    // A failed program just means the cut landed before
                    // any bytes hit the page — equally valid torture.
                    Ok(_) | Err(FlashError::ProgramFailed { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
                self.powered = false;
                self.tel.power_losses.incr();
                self.tel.registry.trace(
                    self.clock.now(),
                    "ftl.power_loss",
                    "power cut at ftl.crash.journal_append",
                );
                return Err(FtlError::PowerLoss);
            }
            let page = journal::encode_page(&self.journal_buf[..take], page_bytes);
            match self.nand.program_page(ppn, &page, &marker) {
                Ok(_) => {
                    self.journal_buf.drain(..take);
                    self.tel.journal_checkpoints.incr();
                }
                // A burned journal slot: the in-order pointer advanced, so
                // the next iteration simply targets the following page.
                Err(FlashError::ProgramFailed { .. }) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// The next unwritten page in the journal region, or `None` when full.
    fn next_journal_ppn(&mut self) -> Result<Option<Ppn>, FtlError> {
        for i in 0..self.journal_region.len() {
            let block = self.journal_region[i];
            let next = self.nand.next_page(block)?;
            if next < self.nand.geometry().pages_per_block {
                let first = self.nand.geometry().first_page(block).as_u64();
                return Ok(Some(Ppn(first + u64::from(next))));
            }
        }
        Ok(None)
    }

    fn mark_valid(&mut self, ppn: Ppn) {
        let block = self.nand.geometry().block_of(ppn);
        if !self.valid[ppn.as_u64() as usize] {
            self.valid[ppn.as_u64() as usize] = true;
            self.valid_count[block.as_u64() as usize] += 1;
        }
    }

    fn mark_invalid(&mut self, ppn: Ppn) {
        // A corrupted mapping may point anywhere; only unmark real pages.
        if ppn.as_u64() >= self.nand.geometry().total_pages() {
            return;
        }
        let block = self.nand.geometry().block_of(ppn);
        if self.valid[ppn.as_u64() as usize] {
            self.valid[ppn.as_u64() as usize] = false;
            self.valid_count[block.as_u64() as usize] -= 1;
        }
    }

    /// Next append-point page, opening a fresh minimum-wear block as needed.
    fn allocate_ppn(&mut self) -> Result<Ppn, FtlError> {
        loop {
            if let Some(block) = self.active_block {
                let next = self.nand.next_page(block)?;
                if next < self.nand.geometry().pages_per_block {
                    return Ok(Ppn(
                        self.nand.geometry().first_page(block).as_u64() + u64::from(next)
                    ));
                }
                self.sealed_blocks.push(block);
                self.active_block = None;
            }
            if self.free_blocks.is_empty() {
                return Err(FtlError::DeviceFull);
            }
            // Wear leveling: lowest-P/E free block (ties by id).
            let mut best = 0usize;
            let mut best_key = (u32::MAX, u64::MAX);
            for (i, &b) in self.free_blocks.iter().enumerate() {
                let key = (self.nand.pe_cycles(b)?, b.as_u64());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            self.active_block = Some(self.free_blocks.swap_remove(best));
        }
    }

    /// Greedy garbage collection: reclaim lowest-valid sealed blocks until
    /// the free pool is above the threshold (or no further progress is
    /// possible).
    fn maybe_gc(&mut self) -> Result<(), FtlError> {
        while (self.free_blocks.len() as u32) <= self.config.gc_free_threshold {
            // Victim: sealed block with fewest valid pages.
            let Some((idx, &victim)) =
                self.sealed_blocks.iter().enumerate().min_by_key(|(_, &b)| {
                    (
                        self.valid_count[b.as_u64() as usize],
                        // Tie-break by wear so equally-empty victims rotate
                        // instead of the lowest id being erased repeatedly.
                        self.nand.pe_cycles(b).unwrap_or(u32::MAX),
                        b.as_u64(),
                    )
                })
            else {
                break;
            };
            if self.valid_count[victim.as_u64() as usize] >= self.nand.geometry().pages_per_block {
                break; // fully valid: no space to gain
            }
            self.sealed_blocks.swap_remove(idx);
            self.tel.gc_runs.incr();
            self.tel.registry.trace(
                self.clock.now(),
                "ftl.gc.victim",
                format!(
                    "block {} with {} valid pages",
                    victim.as_u64(),
                    self.valid_count[victim.as_u64() as usize]
                ),
            );
            self.relocate_and_reclaim(victim)?;
        }
        Ok(())
    }

    /// Moves every valid page out of `victim`, erases it, and returns it to
    /// the free pool (shared by GC and read-refresh). Relocation reads go
    /// through the recovery ladder and relocation programs remap away from
    /// failing blocks, like host writes.
    fn relocate_and_reclaim(&mut self, victim: BlockId) -> Result<(), FtlError> {
        if let Some(idx) = self.sealed_blocks.iter().position(|&b| b == victim) {
            self.sealed_blocks.swap_remove(idx);
        }
        self.relocate_valid_pages(victim)?;
        match self.nand.erase_block(victim) {
            Ok(_) => {
                self.free_blocks.push(victim);
                self.meta_note_wear(victim);
            }
            Err(FlashError::BadBlock { .. }) => { /* retire worn block */ }
            Err(FlashError::EraseFailed { .. }) => {
                // The flash marked it grown-bad; charge the remap budget.
                self.note_block_retired(victim, "erase failure")?;
            }
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
    use ssdhammer_flash::FlashGeometry;

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn builder_setters_override_defaults() {
        let c = FtlConfig::default()
            .with_l2p_layout(L2pLayout::Hashed { key: 9 })
            .with_l2p_base(DramAddr(4096))
            .with_overprovision_blocks(4)
            .with_gc_free_threshold(3)
            .with_hammer_amplification(5)
            .with_unmapped_fast_path(false)
            .with_read_refresh_threshold(None)
            .with_dif(true);
        assert_eq!(c.l2p_base, DramAddr(4096));
        assert_eq!(c.overprovision_blocks, 4);
        assert_eq!(c.gc_free_threshold, 3);
        assert_eq!(c.hammer_amplification, 5);
        assert!(!c.unmapped_fast_path);
        assert_eq!(c.read_refresh_threshold, None);
        assert!(c.dif);
    }

    /// FTL over the given flash and an eagerly vulnerable DRAM for attack
    /// tests.
    fn vulnerable_ftl_with(flash: FlashGeometry, config: FtlConfig) -> Ftl {
        let mut profile =
            ModuleProfile::from_min_rate("eager", ssdhammer_dram::DramGeneration::Ddr3, 2021, 1);
        profile.hc_first = 1000;
        profile.threshold_spread = 0.0;
        profile.row_vulnerable_prob = 1.0;
        profile.weak_cells_per_row = 8.0;
        let clock = SimClock::new();
        let dram = DramModule::builder(DramGeometry::tiny_test())
            .profile(profile)
            .mapping(MappingKind::Linear)
            .seed(5)
            .without_timing()
            .build(clock.clone());
        let nand = FlashArray::new(flash, clock, 1);
        Ftl::new(dram, nand, config).unwrap()
    }

    /// FTL over mid-size flash and an eagerly vulnerable DRAM for attack
    /// tests.
    fn vulnerable_ftl(amplification: u32) -> Ftl {
        vulnerable_ftl_with(
            FlashGeometry::mib64(),
            FtlConfig {
                hammer_amplification: amplification,
                ..FtlConfig::default()
            },
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        ftl.write(Lba(5), &block(0xAA)).unwrap();
        let mut out = block(0);
        let outcome = ftl.read(Lba(5), &mut out).unwrap();
        assert!(matches!(outcome, ReadOutcome::Mapped { .. }));
        assert_eq!(out, block(0xAA));
    }

    #[test]
    fn unmapped_reads_zero_without_flash() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let mut out = block(7);
        let outcome = ftl.read(Lba(100), &mut out).unwrap();
        assert_eq!(outcome, ReadOutcome::Unmapped);
        assert_eq!(out, block(0));
        assert_eq!(ftl.nand().telemetry().reads, 0);
    }

    #[test]
    fn overwrite_moves_to_new_page() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        ftl.write(Lba(3), &block(1)).unwrap();
        let p1 = ftl.peek_mapping(Lba(3)).unwrap().unwrap();
        ftl.write(Lba(3), &block(2)).unwrap();
        let p2 = ftl.peek_mapping(Lba(3)).unwrap().unwrap();
        assert_ne!(p1, p2, "out-of-place write must relocate");
        let mut out = block(0);
        ftl.read(Lba(3), &mut out).unwrap();
        assert_eq!(out, block(2));
    }

    #[test]
    fn trim_unmaps() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        ftl.write(Lba(9), &block(3)).unwrap();
        ftl.trim(Lba(9)).unwrap();
        assert_eq!(ftl.peek_mapping(Lba(9)).unwrap(), None);
        let mut out = block(9);
        assert_eq!(ftl.read(Lba(9), &mut out).unwrap(), ReadOutcome::Unmapped);
        assert_eq!(out, block(0));
    }

    #[test]
    fn out_of_range_lba_rejected() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let cap = ftl.capacity_lbas();
        assert_eq!(
            ftl.write(Lba(cap), &block(0)),
            Err(FtlError::OutOfRange { lba: Lba(cap) })
        );
        let mut out = block(0);
        assert!(ftl.read(Lba(cap), &mut out).is_err());
        assert!(ftl.trim(Lba(cap)).is_err());
    }

    #[test]
    fn bad_buffer_len_rejected() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        assert_eq!(
            ftl.write(Lba(0), &[0u8; 100]),
            Err(FtlError::BadBufferLen { got: 100 })
        );
    }

    #[test]
    fn capacity_reflects_overprovisioning() {
        let ftl = Ftl::tiny_for_tests(1).unwrap();
        // tiny flash: 16 blocks × 64 pages = 1024 pages; auto OP = 2 blocks.
        assert_eq!(ftl.capacity_lbas(), 896);
    }

    #[test]
    fn gc_reclaims_space_under_churn() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let cap = ftl.capacity_lbas();
        // Overwrite a small working set far more times than raw capacity:
        // survives only if GC reclaims invalidated pages.
        for round in 0..20u64 {
            for lba in 0..cap / 4 {
                ftl.write(Lba(lba), &block((round % 251) as u8)).unwrap();
            }
        }
        assert!(ftl.telemetry().gc_runs > 0, "GC must have run");
        // All data still correct.
        let mut out = block(0);
        for lba in 0..cap / 4 {
            ftl.read(Lba(lba), &mut out).unwrap();
            assert_eq!(out[0], 19);
        }
        assert!(ftl.write_amplification() >= 1.0);
    }

    #[test]
    fn filling_every_lba_succeeds_and_persists() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let cap = ftl.capacity_lbas();
        for lba in 0..cap {
            ftl.write(Lba(lba), &block((lba % 255) as u8)).unwrap();
        }
        let mut out = block(0);
        for lba in (0..cap).step_by(37) {
            ftl.read(Lba(lba), &mut out).unwrap();
            assert_eq!(out[0], (lba % 255) as u8);
        }
    }

    #[test]
    fn wear_leveling_prefers_low_pe_blocks() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let cap = ftl.capacity_lbas();
        for round in 0..30u64 {
            for lba in 0..cap / 8 {
                ftl.write(Lba(lba), &block((round & 0xFF) as u8)).unwrap();
            }
        }
        // Wear spread: max - min P/E among good blocks stays small under
        // min-wear allocation.
        let pes: Vec<u32> = ftl
            .nand()
            .good_blocks()
            .iter()
            .map(|&b| ftl.nand().pe_cycles(b).unwrap())
            .collect();
        let (min, max) = (pes.iter().min().unwrap(), pes.iter().max().unwrap());
        assert!(max - min <= 3, "wear spread too large: {pes:?}");
    }

    #[test]
    fn amplification_multiplies_activations() {
        let mut ftl1 = vulnerable_ftl(1);
        let mut ftl5 = vulnerable_ftl(5);
        let mut out = block(0);
        // Alternate two LBAs whose entries live in different rows.
        let lbas = [Lba(0), Lba(512)];
        for _ in 0..100 {
            for &l in &lbas {
                ftl1.read(l, &mut out).unwrap();
                ftl5.read(l, &mut out).unwrap();
            }
        }
        let a1 = ftl1.dram().telemetry().activations;
        let a5 = ftl5.dram().telemetry().activations;
        assert!(
            a5 > a1 * 4,
            "5x amplification should ~5x activations: {a1} vs {a5}"
        );
    }

    #[test]
    fn hammer_reads_flips_l2p_entries_and_redirects() {
        let mut ftl = vulnerable_ftl(1);
        // Locate a victim DRAM row holding L2P entries, with both neighbors
        // also holding entries.
        let table = *ftl.table();
        let victim_bank = 0u32;
        let victim_row = 5u32;
        let victim_lbas = table.lbas_in_row(ftl.dram(), victim_bank, victim_row);
        let above = table.lbas_in_row(ftl.dram(), victim_bank, victim_row - 1);
        let below = table.lbas_in_row(ftl.dram(), victim_bank, victim_row + 1);
        assert!(!victim_lbas.is_empty() && !above.is_empty() && !below.is_empty());

        // Materialize mappings for the victim row's LBAs.
        for &lba in &victim_lbas {
            ftl.write(lba, &block(0x11)).unwrap();
        }
        let before: Vec<_> = victim_lbas
            .iter()
            .map(|&l| ftl.peek_mapping(l).unwrap())
            .collect();

        // §3.1: alternating reads whose entries live in the two aggressor
        // rows. One representative LBA per row suffices to activate it.
        let pattern = [above[0], below[0]];
        let report = ftl.hammer_reads(&pattern, 300_000, 5_000_000.0).unwrap();
        assert!(!report.flips.is_empty(), "hammering should flip L2P bits");

        let after: Vec<_> = victim_lbas
            .iter()
            .map(|&l| ftl.peek_mapping(l).unwrap())
            .collect();
        assert_ne!(before, after, "some victim mapping must have changed");
    }

    #[test]
    fn wild_mapping_reads_zeroes() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        ftl.write(Lba(0), &block(0xAB)).unwrap();
        // Corrupt the entry to an out-of-range page via the DRAM backdoor.
        let addr = ftl.table().entry_addr(Lba(0));
        ftl.dram_mut().write_u32(addr, 0x00FF_FFFF).unwrap();
        let mut out = block(1);
        let outcome = ftl.read(Lba(0), &mut out).unwrap();
        assert!(matches!(outcome, ReadOutcome::Wild { .. }));
        assert_eq!(out, block(0));
    }

    #[test]
    fn redirected_mapping_serves_other_users_data() {
        // The information-leak primitive (§3.2): entry of LBA A redirected
        // to the PPN backing LBA B returns B's data to a read of A.
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        ftl.write(Lba(1), &block(0x01)).unwrap();
        ftl.write(Lba(2), &block(0x02)).unwrap();
        let ppn_b = ftl.peek_mapping(Lba(2)).unwrap().unwrap();
        let addr_a = ftl.table().entry_addr(Lba(1));
        ftl.dram_mut()
            .write_u32(addr_a, u32::try_from(ppn_b.as_u64()).unwrap())
            .unwrap();
        let mut out = block(0);
        ftl.read(Lba(1), &mut out).unwrap();
        assert_eq!(out, block(0x02), "read of A must now leak B's data");
    }

    #[test]
    fn hashed_layout_round_trips_through_ftl() {
        use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
        use ssdhammer_flash::FlashGeometry;
        let clock = SimClock::new();
        let dram = DramModule::builder(DramGeometry::tiny_test())
            .profile(ModuleProfile::invulnerable())
            .mapping(MappingKind::Linear)
            .without_timing()
            .build(clock.clone());
        let nand = FlashArray::new(FlashGeometry::tiny_test(), clock, 1);
        let mut ftl = Ftl::new(
            dram,
            nand,
            FtlConfig {
                l2p_layout: L2pLayout::Hashed { key: 0xC0FFEE },
                ..FtlConfig::default()
            },
        )
        .unwrap();
        for lba in 0..64u64 {
            ftl.write(Lba(lba), &block(lba as u8)).unwrap();
        }
        let mut out = block(0);
        for lba in 0..64u64 {
            ftl.read(Lba(lba), &mut out).unwrap();
            assert_eq!(out[0], lba as u8);
        }
    }

    #[test]
    fn gc_itself_activates_dram_rows() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let before = ftl.dram().telemetry().activations;
        let cap = ftl.capacity_lbas();
        // Fill the device, then keep overwriting half of it: GC victims then
        // carry live data from the cold half interleaved by allocation order,
        // forcing relocations.
        for lba in 0..cap {
            ftl.write(Lba(lba), &block(1)).unwrap();
        }
        for round in 0..6u64 {
            for lba in (0..cap).step_by(2) {
                ftl.write(Lba(lba), &block(round as u8)).unwrap();
            }
        }
        assert!(ftl.telemetry().gc_relocated > 0);
        assert!(ftl.dram().telemetry().activations > before);
    }

    #[test]
    fn device_full_when_working_set_exceeds_capacity() {
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        let cap = ftl.capacity_lbas();
        let mut result = Ok(SimTime::ZERO);
        // Writing unique data to every LBA repeatedly is fine; but raw
        // capacity (including OP) cannot be exceeded in *valid* data. Filling
        // every exported LBA must succeed; the device is full only if we
        // somehow exceed physical valid capacity, which exporting prevents.
        for lba in 0..cap {
            result = ftl.write(Lba(lba), &block(1));
            if result.is_err() {
                break;
            }
        }
        assert!(result.is_ok(), "exported capacity is always writable");
    }

    fn dif_ftl() -> Ftl {
        use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
        use ssdhammer_flash::FlashGeometry;
        let clock = SimClock::new();
        let dram = DramModule::builder(DramGeometry::tiny_test())
            .profile(ModuleProfile::invulnerable())
            .mapping(MappingKind::Linear)
            .without_timing()
            .build(clock.clone());
        let nand = FlashArray::new(FlashGeometry::tiny_test(), clock, 1);
        Ftl::new(
            dram,
            nand,
            FtlConfig {
                dif: true,
                ..FtlConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn dif_guard_blocks_misdirected_reads() {
        let mut ftl = dif_ftl();
        ftl.write(Lba(1), &block(0x01)).unwrap();
        ftl.write(Lba(2), &block(0x02)).unwrap();
        // Normal reads verify cleanly.
        let mut out = block(0);
        assert!(matches!(
            ftl.read(Lba(1), &mut out).unwrap(),
            ReadOutcome::Mapped { .. }
        ));
        assert_eq!(out, block(0x01));
        // Redirect LBA 1's entry to LBA 2's page (the attack's useful flip):
        // the guard was computed for LBA 2, so the read fails instead of
        // leaking LBA 2's data.
        let ppn2 = ftl.peek_mapping(Lba(2)).unwrap().unwrap();
        let addr1 = ftl.table().entry_addr(Lba(1));
        ftl.dram_mut()
            .write_u32(addr1, u32::try_from(ppn2.as_u64()).unwrap())
            .unwrap();
        let mut out = block(9);
        let outcome = ftl.read(Lba(1), &mut out).unwrap();
        assert!(
            matches!(outcome, ReadOutcome::GuardMismatch { .. }),
            "{outcome:?}"
        );
        assert_eq!(out, block(0), "nothing leaks");
        // The legitimate owner still reads its data fine.
        ftl.read(Lba(2), &mut out).unwrap();
        assert_eq!(out, block(0x02));
    }

    #[test]
    fn dif_guards_survive_gc_relocation() {
        let mut ftl = dif_ftl();
        let cap = ftl.capacity_lbas();
        // Fill once, then churn half the LBAs so GC victims carry live data
        // (the cold half) and must relocate it.
        for lba in 0..cap {
            ftl.write(Lba(lba), &block(7)).unwrap();
        }
        for round in 0..6u64 {
            for lba in (0..cap).step_by(2) {
                ftl.write(Lba(lba), &block((round % 251) as u8)).unwrap();
            }
        }
        assert!(ftl.telemetry().gc_relocated > 0, "GC must have moved pages");
        let mut out = block(0);
        for lba in (1..cap).step_by(16) {
            let outcome = ftl.read(Lba(lba), &mut out).unwrap();
            assert!(
                matches!(outcome, ReadOutcome::Mapped { .. }),
                "guards must verify after relocation: {outcome:?}"
            );
            assert_eq!(out[0], 7, "cold data intact at {lba}");
        }
    }

    #[test]
    fn recover_rebuilds_mapping_from_oob() {
        use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
        let mut ftl = Ftl::tiny_for_tests(1).unwrap();
        // Writes including overwrites: recovery must pick the latest version.
        for lba in 0..100u64 {
            ftl.write(Lba(lba), &block((lba % 251) as u8)).unwrap();
        }
        for lba in (0..100u64).step_by(3) {
            ftl.write(Lba(lba), &block(0xEE)).unwrap();
        }
        let expected: Vec<_> = (0..100u64)
            .map(|l| if l % 3 == 0 { 0xEE } else { (l % 251) as u8 })
            .collect();
        // Power loss: DRAM contents (and the L2P table with them) are gone;
        // only flash survives.
        let (_lost_dram, nand) = ftl.into_parts();
        let clock = SimClock::new();
        let fresh_dram = DramModule::builder(DramGeometry::tiny_test())
            .profile(ModuleProfile::invulnerable())
            .mapping(MappingKind::Linear)
            .without_timing()
            .build(clock);
        let mut recovered = Ftl::recover(fresh_dram, nand, FtlConfig::default()).unwrap();
        let mut out = block(0);
        for lba in 0..100u64 {
            recovered.read(Lba(lba), &mut out).unwrap();
            assert_eq!(out[0], expected[lba as usize], "lba {lba}");
        }
        // And the recovered device keeps working (writes allocate fresh
        // pages with higher sequence numbers).
        recovered.write(Lba(5), &block(0x77)).unwrap();
        recovered.read(Lba(5), &mut out).unwrap();
        assert_eq!(out[0], 0x77);
    }

    #[test]
    fn read_refresh_outruns_read_disturb() {
        use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
        use ssdhammer_flash::FlashGeometry;
        let build = |threshold: Option<u64>| {
            let clock = SimClock::new();
            let dram = DramModule::builder(DramGeometry::tiny_test())
                .profile(ModuleProfile::invulnerable())
                .mapping(MappingKind::Linear)
                .without_timing()
                .build(clock.clone());
            let mut nand = FlashArray::new(FlashGeometry::tiny_test(), clock, 1);
            nand.set_read_disturb_limit(500);
            Ftl::new(
                dram,
                nand,
                FtlConfig {
                    read_refresh_threshold: threshold,
                    ..FtlConfig::default()
                },
            )
            .unwrap()
        };
        // Without read-refresh, hot reads eventually return corrupted data.
        let mut unprotected = build(None);
        unprotected.write(Lba(0), &block(0x42)).unwrap();
        let mut saw_corruption = false;
        let mut out = block(0);
        for _ in 0..2_000 {
            unprotected.read(Lba(0), &mut out).unwrap();
            saw_corruption |= out.iter().any(|&b| b != 0x42);
        }
        assert!(
            saw_corruption,
            "read disturb should corrupt unprotected data"
        );

        // With read-refresh below the flash tolerance, data stays clean.
        let mut protected = build(Some(400));
        protected.write(Lba(0), &block(0x42)).unwrap();
        for _ in 0..2_000 {
            protected.read(Lba(0), &mut out).unwrap();
            assert!(
                out.iter().all(|&b| b == 0x42),
                "refresh must keep data clean"
            );
        }
        assert!(protected.telemetry().read_refreshes > 0);
    }

    fn integrity_ftl(mode: IntegrityMode) -> Ftl {
        use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
        use ssdhammer_flash::FlashGeometry;
        let clock = SimClock::new();
        let dram = DramModule::builder(DramGeometry::tiny_test())
            .profile(ModuleProfile::invulnerable())
            .mapping(MappingKind::Linear)
            .without_timing()
            .build(clock.clone());
        let nand = FlashArray::new(FlashGeometry::tiny_test(), clock, 1);
        Ftl::new(dram, nand, FtlConfig::default().with_integrity(mode)).unwrap()
    }

    /// XORs `mask` into the entry word at `addr` through the DRAM backdoor
    /// (peek + rewrite), simulating rowhammer flips without the hammer.
    fn corrupt_u32(ftl: &mut Ftl, addr: DramAddr, mask: u32) {
        let mut buf = [0u8; 4];
        ftl.dram().peek(addr, &mut buf).unwrap();
        let raw = u32::from_le_bytes(buf) ^ mask;
        ftl.dram_mut().write_u32(addr, raw).unwrap();
    }

    #[test]
    fn integrity_detect_fails_corrupted_entries_loudly() {
        let mut ftl = integrity_ftl(IntegrityMode::Detect);
        ftl.write(Lba(1), &block(0x01)).unwrap();
        ftl.write(Lba(2), &block(0x02)).unwrap();
        // Redirect LBA 1's entry at LBA 2's page: without integrity this
        // leaks LBA 2's data (see `redirected_mapping_serves_other_users_data`).
        let ppn2 = ftl.peek_mapping(Lba(2)).unwrap().unwrap();
        let addr1 = ftl.table().entry_addr(Lba(1));
        ftl.dram_mut()
            .write_u32(addr1, u32::try_from(ppn2.as_u64()).unwrap())
            .unwrap();
        let mut out = block(0);
        assert_eq!(
            ftl.read(Lba(1), &mut out),
            Err(FtlError::L2pIntegrity { lba: Lba(1) })
        );
        assert_eq!(out, block(0), "nothing leaks");
        assert_eq!(ftl.telemetry().integrity_detected, 1);
        assert_eq!(
            ftl.telemetry().integrity_repaired,
            0,
            "Detect never repairs"
        );
        // The legitimate owner still reads its own data.
        ftl.read(Lba(2), &mut out).unwrap();
        assert_eq!(out, block(0x02));
    }

    #[test]
    fn integrity_correct_repairs_single_bit_flip_in_place() {
        let mut ftl = integrity_ftl(IntegrityMode::Correct);
        ftl.write(Lba(3), &block(0x33)).unwrap();
        let before = ftl.peek_mapping(Lba(3)).unwrap();
        let addr3 = ftl.table().entry_addr(Lba(3));
        corrupt_u32(&mut ftl, addr3, 1 << 7);
        let mut out = block(0);
        let outcome = ftl.read(Lba(3), &mut out).unwrap();
        assert!(matches!(outcome, ReadOutcome::Mapped { .. }), "{outcome:?}");
        assert_eq!(out, block(0x33));
        assert_eq!(ftl.telemetry().integrity_repaired, 1);
        // The repair rewrote the primary entry: the flip is really gone.
        assert_eq!(ftl.peek_mapping(Lba(3)).unwrap(), before);
    }

    #[test]
    fn integrity_correct_restores_double_flip_from_mirror() {
        let mut ftl = integrity_ftl(IntegrityMode::Correct);
        ftl.write(Lba(4), &block(0x44)).unwrap();
        let before = ftl.peek_mapping(Lba(4)).unwrap();
        // Two flips exceed SEC-DED correction; the distant mirror steps in.
        let addr4 = ftl.table().entry_addr(Lba(4));
        corrupt_u32(&mut ftl, addr4, 0b101);
        let mut out = block(0);
        ftl.read(Lba(4), &mut out).unwrap();
        assert_eq!(out, block(0x44));
        assert_eq!(ftl.telemetry().integrity_mirror_repairs, 1);
        assert_eq!(ftl.peek_mapping(Lba(4)).unwrap(), before);
    }

    #[test]
    fn integrity_unrepairable_divergence_degrades_read_only() {
        let mut ftl = integrity_ftl(IntegrityMode::Correct);
        ftl.write(Lba(5), &block(0x55)).unwrap();
        ftl.write(Lba(6), &block(0x66)).unwrap();
        let slot = ftl.table().slot_of(Lba(5));
        let entry_addr = ftl.table().entry_addr(Lba(5));
        let mirror_addr = ftl.integrity_plane().unwrap().mirror_addr(slot);
        // Primary and mirror both take double-bit hits: nothing trustworthy
        // remains, so the FTL must refuse service rather than guess.
        corrupt_u32(&mut ftl, entry_addr, 0b11);
        corrupt_u32(&mut ftl, mirror_addr, 0b1100);
        let mut out = block(0);
        assert_eq!(
            ftl.read(Lba(5), &mut out),
            Err(FtlError::L2pIntegrity { lba: Lba(5) })
        );
        assert!(ftl.is_read_only(), "unrepairable divergence degrades");
        assert_eq!(ftl.telemetry().integrity_unrepairable, 1);
        // Degraded-mode contract: writes rejected, intact reads still served.
        assert_eq!(ftl.write(Lba(7), &block(0)), Err(FtlError::ReadOnly));
        ftl.read(Lba(6), &mut out).unwrap();
        assert_eq!(out, block(0x66));
    }

    #[test]
    fn integrity_survives_gc_and_overwrites() {
        // Every L2P update must keep code and mirror in sync, including the
        // GC relocation and journal-less recovery paths.
        let mut ftl = integrity_ftl(IntegrityMode::Correct);
        let cap = ftl.capacity_lbas();
        for round in 0..8u64 {
            for lba in 0..cap / 2 {
                ftl.write(Lba(lba), &block((round % 251) as u8)).unwrap();
            }
        }
        assert!(ftl.telemetry().gc_runs > 0, "GC must have run");
        let mut out = block(0);
        for lba in (0..cap / 2).step_by(7) {
            let outcome = ftl.read(Lba(lba), &mut out).unwrap();
            assert!(matches!(outcome, ReadOutcome::Mapped { .. }), "{outcome:?}");
            assert_eq!(out[0], 7);
        }
        assert_eq!(ftl.telemetry().integrity_detected, 0, "no false positives");
    }

    #[test]
    fn scrub_chunk_repairs_flipped_entries_before_the_host_reads_them() {
        let mut ftl = integrity_ftl(IntegrityMode::Correct);
        for lba in 0..32u64 {
            ftl.write(Lba(lba), &block(lba as u8)).unwrap();
        }
        let before: Vec<_> = (0..32u64)
            .map(|l| ftl.peek_mapping(Lba(l)).unwrap())
            .collect();
        for lba in [2u64, 9, 17] {
            let addr = ftl.table().entry_addr(Lba(lba));
            corrupt_u32(&mut ftl, addr, 1 << 3);
        }
        ftl.scrub_chunk(ftl.capacity_lbas(), 0).unwrap();
        let t = ftl.telemetry();
        assert_eq!(t.scrub_entries_checked, ftl.capacity_lbas());
        assert_eq!(t.scrub_repairs, 3, "each flip repaired exactly once");
        assert_eq!(t.scrub_sweeps, 1);
        for (lba, exp) in before.iter().enumerate() {
            assert_eq!(ftl.peek_mapping(Lba(lba as u64)).unwrap(), *exp);
        }
    }

    #[test]
    fn scrub_chunk_issues_flash_patrol_reads_over_mapped_pages() {
        let mut ftl = integrity_ftl(IntegrityMode::Off);
        for lba in 0..16u64 {
            ftl.write(Lba(lba), &block(1)).unwrap();
        }
        ftl.scrub_chunk(0, 5).unwrap();
        assert_eq!(ftl.telemetry().scrub_flash_reads, 5);
        ftl.scrub_chunk(0, 100).unwrap();
        // Only 16 valid pages exist; the patrol never reads unmapped pages.
        assert_eq!(ftl.telemetry().scrub_flash_reads, 5 + 16);
    }

    #[test]
    fn hammering_with_integrity_correct_never_redirects_silently() {
        use ssdhammer_flash::FlashGeometry;
        // 64-block flash: 4096 slots fit the Correct plane (24 KiB) beside
        // the 16 KiB table in the 128 KiB tiny DRAM.
        let flash = FlashGeometry {
            blocks_per_plane: 32,
            ..FlashGeometry::tiny_test()
        };
        let mut ftl = vulnerable_ftl_with(
            flash,
            FtlConfig::default().with_integrity(IntegrityMode::Correct),
        );
        let table = *ftl.table();
        let victim_lbas = table.lbas_in_row(ftl.dram(), 0, 5);
        let above = table.lbas_in_row(ftl.dram(), 0, 4);
        let below = table.lbas_in_row(ftl.dram(), 0, 6);
        assert!(!victim_lbas.is_empty() && !above.is_empty() && !below.is_empty());
        for &lba in &victim_lbas {
            ftl.write(lba, &block(0x11)).unwrap();
        }
        let before: Vec<_> = victim_lbas
            .iter()
            .map(|&l| ftl.peek_mapping(l).unwrap())
            .collect();
        let report = ftl
            .hammer_reads(&[above[0], below[0]], 300_000, 5_000_000.0)
            .unwrap();
        assert!(!report.flips.is_empty(), "bits must still flip physically");
        // The acceptance property: no victim read resolves to a *different*
        // mapping. Each is either repaired back to its true page or fails
        // loudly — silent redirection is gone.
        for (i, &lba) in victim_lbas.iter().enumerate() {
            match ftl.entry_read(lba) {
                Ok(now) => assert_eq!(now, before[i], "lba {} redirected", lba.as_u64()),
                Err(FtlError::L2pIntegrity { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let t = ftl.telemetry();
        assert!(
            t.integrity_repaired + t.integrity_mirror_repairs > 0,
            "hammer flips must have been repaired: {t:?}"
        );
    }

    #[test]
    fn vulnerable_row_lbas_exist_for_row5() {
        // Sanity for the attack tests: rows 4..6 of bank 0 hold L2P entries
        // in the mid-size config.
        let ftl = vulnerable_ftl(1);
        for row in 4..=6 {
            assert!(
                !ftl.table().lbas_in_row(ftl.dram(), 0, row).is_empty(),
                "row {row} holds no entries"
            );
        }
    }
}
