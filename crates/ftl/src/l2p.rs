//! The logical-to-physical (L2P) mapping table, resident in simulated DRAM.
//!
//! "The SPDK FTL library, like most flash-based storage devices, stores a
//! large L2P table in memory as a linear array" (§4.1). Every entry is a
//! 32-bit physical page number; every lookup and update is a real access to
//! the [`DramModule`], which is precisely how host I/O turns into DRAM row
//! activations.
//!
//! Two layouts are provided:
//!
//! * [`L2pLayout::Linear`] — `addr = base + 4·LBA`, the SPDK layout. The
//!   attacker can compute which DRAM row holds which LBA's entry offline.
//! * [`L2pLayout::Hashed`] — entries are scattered by a keyed bijection
//!   (§5's mitigation: "randomize the FTL-internal structures … most easily
//!   accomplished with a hashed L2P table that uses a device-specific key").

use ssdhammer_dram::{DramError, DramModule};
use ssdhammer_flash::Ppn;
use ssdhammer_simkit::rng::splitmix64;
use ssdhammer_simkit::{DramAddr, Lba};

/// Sentinel entry value meaning "unmapped".
pub const INVALID_ENTRY: u32 = 0xFFFF_FFFF;

/// Placement policy of L2P entries in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2pLayout {
    /// Linear array: entry of LBA *n* at `base + 4n` (SPDK-style).
    Linear,
    /// Keyed scattering: entry of LBA *n* at `base + 4·π_k(n)` for a
    /// device-secret bijection `π_k` over the slot space.
    Hashed {
        /// The device-specific secret key.
        key: u64,
    },
}

/// The L2P table: location arithmetic plus typed access through DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2pTable {
    base: DramAddr,
    /// Number of mappable LBAs.
    capacity: u64,
    /// Slot count (next power of two ≥ capacity, so keyed permutations are
    /// clean bijections).
    slots: u64,
    layout: L2pLayout,
}

impl L2pTable {
    /// Creates a table for `capacity` LBAs at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(base: DramAddr, capacity: u64, layout: L2pLayout) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        L2pTable {
            base,
            capacity,
            slots: capacity.next_power_of_two(),
            layout,
        }
    }

    /// Number of mappable LBAs.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Table footprint in bytes (4 bytes per slot).
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.slots * 4
    }

    /// The layout in use.
    #[must_use]
    pub fn layout(&self) -> L2pLayout {
        self.layout
    }

    /// Keyed affine bijection over the slot space (odd multiplier mod 2^k).
    fn permute(&self, key: u64, index: u64) -> u64 {
        let a = splitmix64(key) | 1;
        let b = splitmix64(key ^ 0xD1B5_4A32_D192_ED03);
        a.wrapping_mul(index).wrapping_add(b) & (self.slots - 1)
    }

    fn permute_inv(&self, key: u64, slot: u64) -> u64 {
        let a = splitmix64(key) | 1;
        let b = splitmix64(key ^ 0xD1B5_4A32_D192_ED03);
        // Inverse of odd multiplier mod 2^64 via Newton iteration.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(inv)));
        }
        inv.wrapping_mul(slot.wrapping_sub(b)) & (self.slots - 1)
    }

    /// The slot index holding `lba`'s entry.
    ///
    /// # Panics
    ///
    /// Panics if `lba` exceeds the table capacity.
    #[must_use]
    pub fn slot_of(&self, lba: Lba) -> u64 {
        assert!(lba.as_u64() < self.capacity, "{lba} beyond L2P capacity");
        match self.layout {
            L2pLayout::Linear => lba.as_u64(),
            L2pLayout::Hashed { key } => self.permute(key, lba.as_u64()),
        }
    }

    /// The LBA whose entry occupies `slot`, if any.
    #[must_use]
    pub fn lba_of_slot(&self, slot: u64) -> Option<Lba> {
        if slot >= self.slots {
            return None;
        }
        let lba = match self.layout {
            L2pLayout::Linear => slot,
            L2pLayout::Hashed { key } => self.permute_inv(key, slot),
        };
        (lba < self.capacity).then_some(Lba(lba))
    }

    /// DRAM byte address of `lba`'s entry.
    ///
    /// # Panics
    ///
    /// Panics if `lba` exceeds the table capacity.
    #[must_use]
    pub fn entry_addr(&self, lba: Lba) -> DramAddr {
        self.base.offset(self.slot_of(lba) * 4)
    }

    /// Initializes every slot to [`INVALID_ENTRY`], writing whole DRAM rows
    /// at a time.
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors (e.g. the table does not fit).
    pub fn init(&self, dram: &mut DramModule) -> Result<(), DramError> {
        let row_bytes = u64::from(dram.mapping().geometry().row_bytes);
        let total = self.size_bytes();
        let fill = vec![0xFFu8; row_bytes as usize];
        let mut off = 0u64;
        while off < total {
            let chunk_start = self.base.as_u64() + off;
            // Stay within one row per write.
            let row_off = chunk_start % row_bytes;
            let len = (row_bytes - row_off).min(total - off);
            dram.write(DramAddr(chunk_start), &fill[..len as usize])?;
            off += len;
        }
        Ok(())
    }

    /// Reads `lba`'s entry. Returns `None` for the unmapped sentinel.
    ///
    /// Note: a bit-flipped entry is *not* `None` — it reads back as whatever
    /// physical page number the corruption produced, exactly the confusion
    /// the attack engineers.
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors (including ECC-uncorrectable reads).
    pub fn get(&self, dram: &mut DramModule, lba: Lba) -> Result<Option<Ppn>, DramError> {
        let raw = dram.read_u32(self.entry_addr(lba))?;
        Ok((raw != INVALID_ENTRY).then(|| Ppn(u64::from(raw))))
    }

    /// Reads many entries through one call: the batch counterpart of
    /// [`L2pTable::get`]. Each element of `lbas` still costs exactly one
    /// timed DRAM access in input order — batching amortizes the call
    /// overhead without changing simulated time, activation order, or any
    /// other observable of the per-access path.
    ///
    /// Results are appended to `out` (cleared first), one per input LBA.
    ///
    /// # Errors
    ///
    /// Propagates the first DRAM error; `out` then holds the results of the
    /// accesses completed before it.
    pub fn lookup_batch(
        &self,
        dram: &mut DramModule,
        lbas: &[Lba],
        out: &mut Vec<Option<Ppn>>,
    ) -> Result<(), DramError> {
        out.clear();
        out.reserve(lbas.len());
        for &lba in lbas {
            let raw = dram.read_u32(self.entry_addr(lba))?;
            out.push((raw != INVALID_ENTRY).then(|| Ppn(u64::from(raw))));
        }
        Ok(())
    }

    /// Reads many entries through the non-disturbing DRAM backdoor: no row
    /// activations, no simulated time. For observers only — snapshots,
    /// diagnostics, integrity audits — never for the timed host path.
    ///
    /// Results are appended to `out` (cleared first), one raw little-endian
    /// entry per input LBA ([`INVALID_ENTRY`] = unmapped).
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn peek_batch(
        &self,
        dram: &DramModule,
        lbas: impl IntoIterator<Item = Lba>,
        out: &mut Vec<u32>,
    ) -> Result<(), DramError> {
        out.clear();
        let mut buf = [0u8; 4];
        for lba in lbas {
            dram.peek(self.entry_addr(lba), &mut buf)?;
            out.push(u32::from_le_bytes(buf));
        }
        Ok(())
    }

    /// Writes `lba`'s entry.
    ///
    /// # Errors
    ///
    /// [`FtlError::EntryOverflow`] when a mapped `ppn` does not fit the
    /// 32-bit entry (or collides with the unmapped sentinel); otherwise
    /// propagates DRAM errors.
    ///
    /// [`FtlError::EntryOverflow`]: crate::FtlError::EntryOverflow
    pub fn set(
        &self,
        dram: &mut DramModule,
        lba: Lba,
        ppn: Option<Ppn>,
    ) -> Result<(), crate::FtlError> {
        let raw = match ppn {
            None => INVALID_ENTRY,
            Some(p) => {
                let v = u32::try_from(p.as_u64())
                    .map_err(|_| crate::FtlError::EntryOverflow { ppn: p })?;
                if v == INVALID_ENTRY {
                    return Err(crate::FtlError::EntryOverflow { ppn: p });
                }
                v
            }
        };
        Ok(dram.write_u32(self.entry_addr(lba), raw)?)
    }

    /// All LBAs whose entries live in the DRAM row containing `row_addr`
    /// (column 0 of the row of interest), ascending.
    ///
    /// This is the aggressor-selection primitive: given a target DRAM row,
    /// it answers "which LBAs must I read to activate this row?" (§3.1's
    /// workload construction).
    #[must_use]
    pub fn lbas_in_row(&self, dram: &DramModule, bank: u32, row: u32) -> Vec<Lba> {
        let mapping = dram.mapping();
        let row_bytes = mapping.geometry().row_bytes;
        let mut out = Vec::new();
        for col in (0..row_bytes).step_by(4) {
            let addr = mapping.encode(ssdhammer_dram::Location { bank, row, col });
            let a = addr.as_u64();
            if a < self.base.as_u64() {
                continue;
            }
            let off = a - self.base.as_u64();
            if !off.is_multiple_of(4) || off / 4 >= self.slots {
                continue;
            }
            if let Some(lba) = self.lba_of_slot(off / 4) {
                out.push(lba);
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
    use ssdhammer_simkit::SimClock;

    fn dram() -> DramModule {
        DramModule::builder(DramGeometry::tiny_test())
            .profile(ModuleProfile::invulnerable())
            .mapping(MappingKind::Linear)
            .without_timing()
            .build(SimClock::new())
    }

    #[test]
    fn linear_layout_is_contiguous() {
        let t = L2pTable::new(DramAddr(0), 1000, L2pLayout::Linear);
        assert_eq!(t.entry_addr(Lba(0)), DramAddr(0));
        assert_eq!(t.entry_addr(Lba(10)), DramAddr(40));
        assert_eq!(t.slots, 1024);
        assert_eq!(t.size_bytes(), 4096);
    }

    #[test]
    fn hashed_layout_is_a_bijection() {
        let t = L2pTable::new(DramAddr(0), 1024, L2pLayout::Hashed { key: 0xfeed });
        let mut seen = std::collections::HashSet::new();
        for lba in 0..1024 {
            let slot = t.slot_of(Lba(lba));
            assert!(seen.insert(slot), "slot collision at {lba}");
            assert_eq!(t.lba_of_slot(slot), Some(Lba(lba)));
        }
    }

    #[test]
    fn hashed_layout_depends_on_key() {
        let a = L2pTable::new(DramAddr(0), 1024, L2pLayout::Hashed { key: 1 });
        let b = L2pTable::new(DramAddr(0), 1024, L2pLayout::Hashed { key: 2 });
        let differs = (0..1024).any(|l| a.slot_of(Lba(l)) != b.slot_of(Lba(l)));
        assert!(differs);
    }

    #[test]
    fn hashed_scatters_adjacent_lbas() {
        let t = L2pTable::new(DramAddr(0), 1 << 16, L2pLayout::Hashed { key: 9 });
        // Consecutive LBAs should not land in consecutive slots.
        let s0 = t.slot_of(Lba(100));
        let s1 = t.slot_of(Lba(101));
        assert_ne!(s1, s0 + 1);
    }

    #[test]
    fn init_then_get_is_unmapped() {
        let mut d = dram();
        let t = L2pTable::new(DramAddr(0), 2048, L2pLayout::Linear);
        t.init(&mut d).unwrap();
        for lba in [0u64, 1, 999, 2047] {
            assert_eq!(t.get(&mut d, Lba(lba)).unwrap(), None);
        }
    }

    #[test]
    fn set_get_roundtrip_both_layouts() {
        for layout in [L2pLayout::Linear, L2pLayout::Hashed { key: 7 }] {
            let mut d = dram();
            let t = L2pTable::new(DramAddr(0), 2048, layout);
            t.init(&mut d).unwrap();
            t.set(&mut d, Lba(37), Some(Ppn(1234))).unwrap();
            assert_eq!(t.get(&mut d, Lba(37)).unwrap(), Some(Ppn(1234)));
            t.set(&mut d, Lba(37), None).unwrap();
            assert_eq!(t.get(&mut d, Lba(37)).unwrap(), None);
        }
    }

    #[test]
    fn lbas_in_row_inverts_entry_addr() {
        for layout in [L2pLayout::Linear, L2pLayout::Hashed { key: 3 }] {
            let d = dram();
            let t = L2pTable::new(DramAddr(0), 4096, layout);
            // Collect all LBAs reported for every row and verify each one's
            // entry really decodes into that row.
            let mut total = 0usize;
            for bank in 0..2 {
                for row in 0..16 {
                    for lba in t.lbas_in_row(&d, bank, row) {
                        let loc = d.mapping().decode(t.entry_addr(lba));
                        assert_eq!((loc.bank, loc.row), (bank, row));
                        total += 1;
                    }
                }
            }
            // 4096 entries × 4 B = 16 KiB = 16 rows of 1 KiB; all entries
            // must be found exactly once.
            assert_eq!(total, 4096);
        }
    }

    #[test]
    fn set_rejects_unrepresentable_ppns_without_panicking() {
        let mut d = dram();
        let t = L2pTable::new(DramAddr(0), 2048, L2pLayout::Linear);
        t.init(&mut d).unwrap();
        assert_eq!(
            t.set(&mut d, Lba(0), Some(Ppn(1 << 40))),
            Err(crate::FtlError::EntryOverflow { ppn: Ppn(1 << 40) })
        );
        assert_eq!(
            t.set(&mut d, Lba(0), Some(Ppn(u64::from(INVALID_ENTRY)))),
            Err(crate::FtlError::EntryOverflow {
                ppn: Ppn(u64::from(INVALID_ENTRY))
            })
        );
        // The entry is untouched by the rejected writes.
        assert_eq!(t.get(&mut d, Lba(0)).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "beyond L2P capacity")]
    fn slot_of_rejects_out_of_range() {
        let t = L2pTable::new(DramAddr(0), 100, L2pLayout::Linear);
        let _ = t.slot_of(Lba(100));
    }
}
