//! DRAM-resident FTL metadata mirrors: the grown-bad-block table, per-block
//! wear-level counters, and the L2P journal write cache.
//!
//! The paper's threat model covers *any* FTL state resident in the SSD's
//! on-board DRAM, not just the L2P table (§2.3). Real firmware keeps its
//! bad-block table, wear-leveling statistics, and write-cache metadata in
//! the same DRAM; a rowhammer flip in any of them is a silent-failure
//! scenario of its own (a good block treated as bad, a hot block treated as
//! cold, a cached journal entry replayed wrong). This module lays those
//! structures out in simulated DRAM — row-aligned, right after the L2P
//! table, where the controller's address swizzling interleaves their rows
//! with L2P rows — and the [`Ftl`] write-through hooks keep them current.
//!
//! The plane is **opt-in** ([`FtlConfig::meta_resident`], default off):
//! write-through costs timed DRAM accesses, and the repro figures must stay
//! bit-identical to their committed baselines.
//!
//! [`Ftl`]: crate::Ftl
//! [`FtlConfig::meta_resident`]: crate::FtlConfig::meta_resident

use ssdhammer_dram::{DramError, DramModule};
use ssdhammer_simkit::DramAddr;

/// Journal write-cache ring slots mirrored in DRAM.
pub const JOURNAL_SLOTS: u64 = 64;
/// 32-bit words per journal slot: LBA, sequence, PPN, slot tag.
pub const JOURNAL_SLOT_WORDS: u64 = 4;

/// Which DRAM-resident metadata structure a word belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaKind {
    /// Grown-bad-block table: one word per flash block, bit 0 = retired.
    BadBlock,
    /// Wear-level counters: one word per flash block, P/E cycles in the
    /// high half.
    Wear,
    /// L2P journal write cache: a [`JOURNAL_SLOTS`]-slot ring of
    /// [`JOURNAL_SLOT_WORDS`]-word entries.
    Journal,
}

impl core::fmt::Display for MetaKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            MetaKind::BadBlock => "bad_block",
            MetaKind::Wear => "wear",
            MetaKind::Journal => "journal",
        })
    }
}

/// DRAM placement of the three metadata mirrors. Each region starts on a
/// DRAM row boundary so the structures occupy disjoint rows — under a
/// swizzled controller mapping those rows scatter among L2P rows, which is
/// what makes them hammerable through host reads alone (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaPlane {
    bad_base: DramAddr,
    wear_base: DramAddr,
    journal_base: DramAddr,
    blocks: u64,
    end: u64,
}

fn align_up(addr: u64, to: u64) -> u64 {
    addr.div_ceil(to) * to
}

impl MetaPlane {
    /// Lays the plane out row-aligned starting at or after `primary_end`
    /// (the end of the L2P table), one word per flash block for the
    /// bad-block and wear tables plus the journal ring. Returns `None` when
    /// the regions would not fit below `limit` (the start of the integrity
    /// plane, or the end of DRAM).
    #[must_use]
    pub fn plan(blocks: u64, primary_end: u64, row_bytes: u64, limit: u64) -> Option<Self> {
        let bad_base = align_up(primary_end, row_bytes);
        let wear_base = align_up(bad_base + blocks * 4, row_bytes);
        let journal_base = align_up(wear_base + blocks * 4, row_bytes);
        let end = align_up(
            journal_base + JOURNAL_SLOTS * JOURNAL_SLOT_WORDS * 4,
            row_bytes,
        );
        if end > limit {
            return None;
        }
        Some(MetaPlane {
            bad_base: DramAddr(bad_base),
            wear_base: DramAddr(wear_base),
            journal_base: DramAddr(journal_base),
            blocks,
            end,
        })
    }

    /// Packs the plane word-aligned into `[start, limit)` — the L2P table's
    /// slot-padding tail. This is how real firmware lays DRAM out (metadata
    /// right behind the entries), and it is what makes the attack reach it:
    /// the metadata words share memory-controller swizzle groups with live
    /// entries, so their DRAM rows are physically adjacent to rows the host
    /// can activate through reads. Returns `None` when the tail is too
    /// small.
    #[must_use]
    pub fn plan_packed(blocks: u64, start: u64, limit: u64) -> Option<Self> {
        let bad_base = align_up(start, 4);
        let wear_base = bad_base + blocks * 4;
        let journal_base = wear_base + blocks * 4;
        let end = journal_base + JOURNAL_SLOTS * JOURNAL_SLOT_WORDS * 4;
        if end > limit {
            return None;
        }
        Some(MetaPlane {
            bad_base: DramAddr(bad_base),
            wear_base: DramAddr(wear_base),
            journal_base: DramAddr(journal_base),
            blocks,
            end,
        })
    }

    /// First byte of a region.
    #[must_use]
    pub fn base(&self, kind: MetaKind) -> DramAddr {
        match kind {
            MetaKind::BadBlock => self.bad_base,
            MetaKind::Wear => self.wear_base,
            MetaKind::Journal => self.journal_base,
        }
    }

    /// Number of 32-bit words in a region.
    #[must_use]
    pub fn words(&self, kind: MetaKind) -> u64 {
        match kind {
            MetaKind::BadBlock | MetaKind::Wear => self.blocks,
            MetaKind::Journal => JOURNAL_SLOTS * JOURNAL_SLOT_WORDS,
        }
    }

    /// DRAM address of word `idx` of `kind`, if in range.
    #[must_use]
    pub fn word_addr(&self, kind: MetaKind, idx: u64) -> Option<DramAddr> {
        (idx < self.words(kind)).then(|| self.base(kind).offset(idx * 4))
    }

    /// One byte past the plane's DRAM footprint.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The word a freshly initialized region holds at `idx` — a mixed bit
    /// pattern (structure tag + index) so both true- and anti-cells have
    /// something to flip.
    #[must_use]
    pub fn init_word(kind: MetaKind, idx: u64) -> u32 {
        let idx = idx as u32;
        match kind {
            MetaKind::BadBlock => 0xB4D0_0000 | (idx << 1),
            MetaKind::Wear => Self::wear_word(idx, 0),
            MetaKind::Journal => 0x4A4E_4C00 ^ idx,
        }
    }

    /// Wear-table encoding: P/E cycles in the high half, a tagged block id
    /// in the low half.
    #[must_use]
    pub fn wear_word(block: u32, pe_cycles: u32) -> u32 {
        (pe_cycles << 16) | 0x5A00 | (block & 0xFF)
    }

    /// Bad-block-table encoding: tag, block id, and the retired bit.
    #[must_use]
    pub fn bad_word(block: u32, bad: bool) -> u32 {
        0xB4D0_0000 | (block << 1) | u32::from(bad)
    }

    /// Materializes every region with its initial pattern, through timed
    /// DRAM writes (this is firmware boot work).
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn init(&self, dram: &mut DramModule) -> Result<(), DramError> {
        for kind in [MetaKind::BadBlock, MetaKind::Wear, MetaKind::Journal] {
            for idx in 0..self.words(kind) {
                dram.write_u32(self.base(kind).offset(idx * 4), Self::init_word(kind, idx))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_row_aligned_and_bounded() {
        let p = MetaPlane::plan(64, 4096 + 1, 1024, 1 << 20).unwrap();
        for kind in [MetaKind::BadBlock, MetaKind::Wear, MetaKind::Journal] {
            assert_eq!(p.base(kind).as_u64() % 1024, 0, "{kind} not row-aligned");
        }
        assert!(p.base(MetaKind::BadBlock).as_u64() >= 4097);
        assert!(p.end() <= 1 << 20);
        assert_eq!(p.words(MetaKind::BadBlock), 64);
        assert_eq!(
            p.words(MetaKind::Journal),
            JOURNAL_SLOTS * JOURNAL_SLOT_WORDS
        );
    }

    #[test]
    fn plan_refuses_overflow() {
        assert!(MetaPlane::plan(64, 0, 1024, 1024).is_none());
    }

    #[test]
    fn word_addr_bounds() {
        let p = MetaPlane::plan(8, 0, 1024, 1 << 20).unwrap();
        assert!(p.word_addr(MetaKind::Wear, 7).is_some());
        assert!(p.word_addr(MetaKind::Wear, 8).is_none());
    }

    #[test]
    fn encodings_are_distinct_and_tagged() {
        assert_ne!(MetaPlane::bad_word(3, false), MetaPlane::bad_word(3, true));
        assert_eq!(MetaPlane::bad_word(3, false) & 1, 0);
        assert_eq!(MetaPlane::bad_word(3, true) & 1, 1);
        assert_eq!(MetaPlane::wear_word(2, 5) >> 16, 5);
    }
}
