//! L2P entry integrity protection: per-entry SEC-DED codes plus a distant
//! mirror copy.
//!
//! The paper's exploit chain rests on one unprotected asset — the in-DRAM
//! L2P table, whose flipped entries silently redirect logical blocks. This
//! module is the victim-side answer (per the defense taxonomy in *SoK:
//! Rowhammer on Commodity Operating Systems* and the Mutlu et al.
//! retrospective): every 32-bit entry carries an extended-Hamming(39,32)
//! SEC-DED code byte, and (in [`IntegrityMode::Correct`]) a mirrored copy —
//! with its own code — placed at the far end of DRAM, many rows away from
//! the primary table, so a hammer pattern tuned to the table's rows does
//! not also disturb the mirror.
//!
//! Verification runs on the firmware's read path:
//!
//! * **Detect** — a mismatching code fails the lookup loudly; the host sees
//!   an integrity error instead of another block's data.
//! * **Correct** — a single-bit flip (in the entry *or* its code) is fixed
//!   in place; a multi-bit flip is repaired from the verified mirror; if
//!   the mirror has diverged too, the device degrades to read-only rather
//!   than serve a redirected block.

use ssdhammer_dram::{DramError, DramModule};
use ssdhammer_simkit::DramAddr;

/// L2P entry protection level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// No protection: flipped entries redirect silently (the paper's
    /// attack surface).
    #[default]
    Off,
    /// Per-entry SEC-DED code, verified on read; mismatches fail the
    /// lookup but are not repaired.
    Detect,
    /// Detect plus repair: single-bit errors fixed in place, multi-bit
    /// errors restored from a distant mirror copy; unrepairable divergence
    /// degrades the device to read-only.
    Correct,
}

/// Codeword span of the extended Hamming(39,32) code: data and parity bits
/// occupy positions `1..=38`; the 7th stored bit is overall parity.
const CODE_SPAN: u64 = 38;

/// Scatters a 32-bit value into Hamming codeword positions `1..=38`,
/// skipping the power-of-two parity positions.
fn spread(value: u32) -> u64 {
    let mut cw = 0u64;
    let mut pos = 1u64;
    for bit in 0..32 {
        while pos & (pos - 1) == 0 {
            pos += 1; // parity lives at powers of two
        }
        if (value >> bit) & 1 == 1 {
            cw |= 1 << pos;
        }
        pos += 1;
    }
    cw
}

/// The data-bit index stored at codeword position `pos`, if any.
fn data_bit_at(pos: u64) -> Option<u32> {
    if pos == 0 || pos > CODE_SPAN || pos & (pos - 1) == 0 {
        return None;
    }
    let mut idx = 0u32;
    let mut p = 1u64;
    loop {
        while p & (p - 1) == 0 {
            p += 1;
        }
        if p == pos {
            return Some(idx);
        }
        idx += 1;
        p += 1;
    }
}

/// The six Hamming parity bits over the spread codeword.
fn parities(cw: u64) -> u8 {
    let mut out = 0u8;
    for k in 0..6u32 {
        let mut p = 0u64;
        for i in 1..=CODE_SPAN {
            if i & (1 << k) != 0 {
                p ^= (cw >> i) & 1;
            }
        }
        out |= (p as u8) << k;
    }
    out
}

/// Encodes the 7-bit SEC-DED code for a 32-bit entry: six Hamming parity
/// bits plus overall parity over the whole codeword.
#[must_use]
pub fn secded_encode(value: u32) -> u8 {
    let cw = spread(value);
    let syn = parities(cw);
    let overall = ((cw.count_ones() + u32::from(syn.count_ones() as u8)) & 1) as u8;
    syn | (overall << 6)
}

/// Result of checking a (value, code) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecdedOutcome {
    /// Value and code agree.
    Clean,
    /// Exactly one bit flipped (in the value or the code); `value` is the
    /// corrected entry. When the flip hit a parity bit the value is
    /// unchanged but the code must be rewritten.
    Corrected {
        /// The repaired 32-bit entry.
        value: u32,
    },
    /// Two or more flips: detected but beyond single-error correction.
    Uncorrectable,
}

/// Checks `value` against its stored SEC-DED `code`.
#[must_use]
pub fn secded_check(value: u32, code: u8) -> SecdedOutcome {
    let cw = spread(value);
    let stored_syn = code & 0x3F;
    let stored_overall = (code >> 6) & 1;
    let syndrome = stored_syn ^ parities(cw);
    let overall_now = ((cw.count_ones() + u32::from(stored_syn.count_ones() as u8)) & 1) as u8;
    let overall_mismatch = overall_now != stored_overall;
    match (syndrome, overall_mismatch) {
        (0, false) => SecdedOutcome::Clean,
        // The overall-parity bit itself flipped; data is intact.
        (0, true) => SecdedOutcome::Corrected { value },
        (s, true) => match data_bit_at(u64::from(s)) {
            Some(bit) => SecdedOutcome::Corrected {
                value: value ^ (1 << bit),
            },
            // A parity bit flipped (power-of-two position): data intact.
            None if u64::from(s) <= CODE_SPAN => SecdedOutcome::Corrected { value },
            // Syndrome outside the codeword: aliased multi-bit error.
            None => SecdedOutcome::Uncorrectable,
        },
        (_, false) => SecdedOutcome::Uncorrectable,
    }
}

/// What one entry verification concluded (and did).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Entry matched its code.
    Clean,
    /// Mismatch found in [`IntegrityMode::Detect`]: not repaired.
    Detected,
    /// Single-bit error fixed in place; carries the repaired entry.
    Repaired(u32),
    /// Multi-bit error restored from the mirror; carries the restored
    /// entry.
    MirrorRepaired(u32),
    /// Primary and mirror have both diverged beyond repair.
    Unrepairable,
}

/// DRAM placement and mechanics of the protection plane. One instance per
/// FTL; all counters and policy (read-only degradation) stay with the FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityPlane {
    mode: IntegrityMode,
    /// One SEC-DED code byte per slot, adjacent to nothing the attacker
    /// targets directly.
    code_base: DramAddr,
    /// Full 32-bit mirror per slot ([`IntegrityMode::Correct`] only).
    mirror_base: DramAddr,
    /// One code byte per mirror slot.
    mirror_code_base: DramAddr,
    slots: u64,
}

impl IntegrityPlane {
    /// Lays the plane out at the top of DRAM, as far from `primary_end`
    /// (the end of the L2P table) as the module allows. Returns `None`
    /// when the regions would not fit or would overlap the primary table.
    #[must_use]
    pub fn plan(
        mode: IntegrityMode,
        slots: u64,
        primary_end: u64,
        dram_bytes: u64,
    ) -> Option<Self> {
        if mode == IntegrityMode::Off {
            return None;
        }
        let mirror_bytes = if mode == IntegrityMode::Correct {
            slots * 5 // 4-byte mirror + 1 code byte
        } else {
            0
        };
        let need = slots + mirror_bytes;
        if dram_bytes < need || dram_bytes - need < primary_end {
            return None;
        }
        let mirror_base = dram_bytes - slots * 4; // unused (== dram_bytes) in Detect
        let mirror_code_base = mirror_base - (mirror_bytes.saturating_sub(slots * 4));
        let code_base = dram_bytes - need;
        Some(IntegrityPlane {
            mode,
            code_base: DramAddr(code_base),
            mirror_base: DramAddr(mirror_base),
            mirror_code_base: DramAddr(mirror_code_base),
            slots,
        })
    }

    /// The protection level this plane implements.
    #[must_use]
    pub fn mode(&self) -> IntegrityMode {
        self.mode
    }

    /// First byte of the plane's DRAM footprint (diagnostics).
    #[must_use]
    pub fn region_start(&self) -> DramAddr {
        self.code_base
    }

    /// DRAM address of `slot`'s code byte (experiments and tests).
    #[must_use]
    pub fn code_addr(&self, slot: u64) -> DramAddr {
        self.code_base.offset(slot)
    }

    /// DRAM address of `slot`'s mirror entry (experiments and tests; only
    /// meaningful in [`IntegrityMode::Correct`]).
    #[must_use]
    pub fn mirror_addr(&self, slot: u64) -> DramAddr {
        self.mirror_base.offset(slot * 4)
    }

    /// Initializes codes (and mirror, in Correct mode) for a table whose
    /// every slot holds `fill_entry`, writing whole DRAM rows at a time.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn init(&self, dram: &mut DramModule, fill_entry: u32) -> Result<(), DramError> {
        let code = secded_encode(fill_entry);
        fill_region(dram, self.code_base, self.slots, &[code])?;
        if self.mode == IntegrityMode::Correct {
            fill_region(
                dram,
                self.mirror_base,
                self.slots * 4,
                &fill_entry.to_le_bytes(),
            )?;
            fill_region(dram, self.mirror_code_base, self.slots, &[code])?;
        }
        Ok(())
    }

    /// Records a fresh entry value: rewrites the code byte and (in Correct
    /// mode) the mirror. Called on every L2P update.
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors.
    pub fn record(&self, dram: &mut DramModule, slot: u64, raw: u32) -> Result<(), DramError> {
        let code = secded_encode(raw);
        dram.write(self.code_base.offset(slot), &[code])?;
        if self.mode == IntegrityMode::Correct {
            dram.write_u32(self.mirror_base.offset(slot * 4), raw)?;
            dram.write(self.mirror_code_base.offset(slot), &[code])?;
        }
        Ok(())
    }

    /// Verifies (and in Correct mode repairs) the entry at `slot`, whose
    /// primary copy lives at `entry_addr` and currently reads back as
    /// `raw`. Repairs rewrite the primary (recharging the flipped cells).
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors from the plane's own accesses.
    pub fn verify(
        &self,
        dram: &mut DramModule,
        slot: u64,
        entry_addr: DramAddr,
        raw: u32,
    ) -> Result<VerifyOutcome, DramError> {
        let mut code_buf = [0u8; 1];
        dram.read(self.code_base.offset(slot), &mut code_buf)?;
        match secded_check(raw, code_buf[0]) {
            SecdedOutcome::Clean => Ok(VerifyOutcome::Clean),
            _ if self.mode == IntegrityMode::Detect => Ok(VerifyOutcome::Detected),
            SecdedOutcome::Corrected { value } => {
                // Rewrite both primary and code: the flip may be in either.
                dram.write_u32(entry_addr, value)?;
                dram.write(self.code_base.offset(slot), &[secded_encode(value)])?;
                Ok(VerifyOutcome::Repaired(value))
            }
            SecdedOutcome::Uncorrectable => self.repair_from_mirror(dram, slot, entry_addr),
        }
    }

    /// Restores a primary entry that could not even be read (e.g. DRAM ECC
    /// declared the word uncorrectable) from the mirror. Returns
    /// [`VerifyOutcome::Unrepairable`] outside [`IntegrityMode::Correct`].
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors from the plane's own accesses.
    pub fn restore(
        &self,
        dram: &mut DramModule,
        slot: u64,
        entry_addr: DramAddr,
    ) -> Result<VerifyOutcome, DramError> {
        if self.mode != IntegrityMode::Correct {
            return Ok(VerifyOutcome::Unrepairable);
        }
        self.repair_from_mirror(dram, slot, entry_addr)
    }

    /// Restores the primary entry from the mirror, provided the mirror
    /// itself verifies (clean or single-bit-correctable).
    fn repair_from_mirror(
        &self,
        dram: &mut DramModule,
        slot: u64,
        entry_addr: DramAddr,
    ) -> Result<VerifyOutcome, DramError> {
        let mirror = match dram.read_u32(self.mirror_base.offset(slot * 4)) {
            Ok(v) => v,
            // DRAM-level ECC already gave up on the mirror word.
            Err(DramError::Uncorrectable { .. }) => return Ok(VerifyOutcome::Unrepairable),
            Err(e) => return Err(e),
        };
        let mut code_buf = [0u8; 1];
        dram.read(self.mirror_code_base.offset(slot), &mut code_buf)?;
        let good = match secded_check(mirror, code_buf[0]) {
            SecdedOutcome::Clean => mirror,
            SecdedOutcome::Corrected { value } => value,
            SecdedOutcome::Uncorrectable => return Ok(VerifyOutcome::Unrepairable),
        };
        dram.write_u32(entry_addr, good)?;
        let code = secded_encode(good);
        dram.write(self.code_base.offset(slot), &[code])?;
        dram.write_u32(self.mirror_base.offset(slot * 4), good)?;
        dram.write(self.mirror_code_base.offset(slot), &[code])?;
        Ok(VerifyOutcome::MirrorRepaired(good))
    }
}

/// Fills `len` bytes starting at `base` with a repeating `pattern`,
/// splitting writes at DRAM row boundaries.
fn fill_region(
    dram: &mut DramModule,
    base: DramAddr,
    len: u64,
    pattern: &[u8],
) -> Result<(), DramError> {
    let row_bytes = u64::from(dram.mapping().geometry().row_bytes);
    let mut fill = vec![0u8; row_bytes as usize];
    for (i, b) in fill.iter_mut().enumerate() {
        *b = pattern[i % pattern.len()];
    }
    let mut off = 0u64;
    while off < len {
        let start = base.as_u64() + off;
        let row_off = start % row_bytes;
        let chunk = (row_bytes - row_off).min(len - off);
        // Keep the repeating pattern phase-aligned to the region start.
        let phase = (off % pattern.len() as u64) as usize;
        let mut piece = Vec::with_capacity(chunk as usize);
        for i in 0..chunk as usize {
            piece.push(pattern[(phase + i) % pattern.len()]);
        }
        dram.write(DramAddr(start), &piece)?;
        off += chunk;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_check_roundtrip_is_clean() {
        for v in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001, 12345] {
            assert_eq!(secded_check(v, secded_encode(v)), SecdedOutcome::Clean);
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        for v in [0u32, 0xFFFF_FFFF, 0xA5A5_5A5A] {
            let code = secded_encode(v);
            for bit in 0..32 {
                let corrupted = v ^ (1 << bit);
                assert_eq!(
                    secded_check(corrupted, code),
                    SecdedOutcome::Corrected { value: v },
                    "value {v:#x} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_single_code_bit_flip_preserves_data() {
        let v = 0xCAFE_F00Du32;
        let code = secded_encode(v);
        for bit in 0..7 {
            let outcome = secded_check(v, code ^ (1 << bit));
            assert_eq!(
                outcome,
                SecdedOutcome::Corrected { value: v },
                "code bit {bit}"
            );
        }
    }

    #[test]
    fn double_bit_flips_are_detected_not_miscorrected() {
        let v = 0x1234_5678u32;
        let code = secded_encode(v);
        for a in 0..32 {
            for b in (a + 1)..32 {
                let corrupted = v ^ (1 << a) ^ (1 << b);
                assert_eq!(
                    secded_check(corrupted, code),
                    SecdedOutcome::Uncorrectable,
                    "bits {a},{b}"
                );
            }
        }
    }

    #[test]
    fn data_positions_cover_exactly_32_bits() {
        let covered: Vec<u32> = (1..=CODE_SPAN).filter_map(data_bit_at).collect();
        assert_eq!(covered.len(), 32);
        let mut sorted = covered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "each data bit maps to one position");
    }

    #[test]
    fn plan_rejects_overlap_with_primary_table() {
        // 1024 slots of protection need 1024 (codes) + 5120 (mirror) bytes.
        assert!(IntegrityPlane::plan(IntegrityMode::Correct, 1024, 4096, 8192).is_none());
        assert!(IntegrityPlane::plan(IntegrityMode::Correct, 1024, 4096, 16384).is_some());
        assert!(IntegrityPlane::plan(IntegrityMode::Off, 1024, 0, 1 << 30).is_none());
    }

    #[test]
    fn detect_mode_plans_without_a_mirror() {
        let plane = IntegrityPlane::plan(IntegrityMode::Detect, 1024, 4096, 8192).unwrap();
        assert_eq!(plane.region_start().as_u64(), 8192 - 1024);
    }
}
