//! # ssdhammer-ftl
//!
//! A page-mapped flash translation layer whose L2P table lives in simulated
//! DRAM — the attack surface of *Rowhammering Storage Devices* (HotStorage
//! '21).
//!
//! The crate mirrors the SPDK FTL the paper prototyped against (§4.1):
//!
//! * a **linear L2P array** in DRAM (one 32-bit PPN per LBA), with a
//!   **keyed-hash** alternative implementing §5's randomization mitigation;
//! * out-of-place writes with an append point, greedy garbage collection,
//!   and wear-aware block allocation on an [`ssdhammer_flash::FlashArray`];
//! * **uncached** L2P accesses — every host I/O activates DRAM rows, which
//!   is what makes NVMe-rate read workloads a hammer (§2.3 argues SSD
//!   firmware DRAM is not cached);
//! * a configurable per-I/O activation amplification
//!   ([`FtlConfig::hammer_amplification`]), the knob the paper set to 5 to
//!   compensate for its slow testbed;
//! * a bulk [`Ftl::hammer_reads`] path that aggregates attack workloads into
//!   refresh-window-sized batches so experiments can span simulated hours;
//! * the unmapped-read fast path (reads of trimmed blocks skip flash), which
//!   the paper notes lets attackers reach higher request rates.
//!
//! # Examples
//!
//! The mechanism of Figure 1 — reads alternating between two aggressor rows
//! of the L2P table flip a bit in the victim row between them:
//!
//! ```
//! use ssdhammer_ftl::Ftl;
//! use ssdhammer_simkit::Lba;
//!
//! # fn main() -> Result<(), ssdhammer_ftl::FtlError> {
//! let mut ftl = Ftl::tiny_for_tests(1)?;
//! // Which LBAs' entries share DRAM row 1 of bank 0?
//! let victims = ftl.table().lbas_in_row(ftl.dram(), 0, 1);
//! assert!(!victims.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[allow(clippy::module_inception)]
mod ftl;
pub mod integrity;
mod journal;
mod l2p;
pub mod meta;

pub use ftl::{
    error_is_legal, Ftl, FtlConfig, FtlError, FtlTelemetry, HostOp, ReadOutcome, CRASH_SITES,
};
pub use integrity::{IntegrityMode, SecdedOutcome};
pub use l2p::{L2pLayout, L2pTable, INVALID_ENTRY};
pub use meta::{MetaKind, MetaPlane};
