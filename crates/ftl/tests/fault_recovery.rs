//! Integration tests for the FTL recovery stack under deterministic fault
//! injection: the read-retry ladder with ECC escalation, grown-bad-block
//! remapping, journal checkpoint + power-loss replay, and graceful
//! degradation to read-only mode.

use ssdhammer_dram::{DramGeometry, DramModule, MappingKind, ModuleProfile};
use ssdhammer_flash::{FlashArray, FlashGeometry};
use ssdhammer_ftl::{Ftl, FtlConfig, FtlError, ReadOutcome};
use ssdhammer_simkit::faultplane::{FaultPlane, FaultPlaneConfig, FaultSpec};
use ssdhammer_simkit::{Lba, SimClock, BLOCK_SIZE};

fn block(fill: u8) -> Vec<u8> {
    vec![fill; BLOCK_SIZE]
}

fn fresh_dram(seed: u64) -> DramModule {
    DramModule::builder(DramGeometry::tiny_test())
        .profile(ModuleProfile::invulnerable())
        .mapping(MappingKind::Linear)
        .seed(seed)
        .without_timing()
        .build(SimClock::new())
}

/// A tiny FTL whose NAND consults the given fault sites.
fn faulty_ftl(seed: u64, config: FtlConfig, faults: FaultPlaneConfig) -> Ftl {
    let clock = SimClock::new();
    let dram = DramModule::builder(DramGeometry::tiny_test())
        .profile(ModuleProfile::invulnerable())
        .mapping(MappingKind::Linear)
        .seed(seed)
        .without_timing()
        .build(clock.clone());
    // Seed 1 yields no factory-bad blocks in the tiny geometry.
    let mut nand = FlashArray::new(FlashGeometry::tiny_test(), clock, 1);
    nand.set_fault_plane(FaultPlane::new(seed, &faults));
    Ftl::new(dram, nand, config).unwrap()
}

#[test]
fn transient_read_failures_recover_through_retries() {
    // Half of all media reads fail; 8 retries make an unrecovered read
    // astronomically unlikely (and the fixed seed makes it impossible).
    let faults =
        FaultPlaneConfig::new().with_site("flash.read_fail", FaultSpec::with_probability(0.5));
    let mut ftl = faulty_ftl(7, FtlConfig::default().with_read_retry_max(8), faults);
    for lba in 0..50u64 {
        ftl.write(Lba(lba), &block(lba as u8)).unwrap();
    }
    let mut out = block(0);
    for lba in 0..50u64 {
        let outcome = ftl.read(Lba(lba), &mut out).unwrap();
        assert!(matches!(outcome, ReadOutcome::Mapped { .. }));
        assert_eq!(out[0], lba as u8, "lba {lba}");
    }
    let t = ftl.telemetry();
    assert!(t.read_retries > 0, "retries must have fired");
    assert_eq!(t.uncorrectable_reads, 0);
}

#[test]
fn exhausted_ladder_escalates_into_ecc_classification() {
    // Every read fails, no retries: each read goes straight to SEC-DED
    // classification of its 1-3 flipped bits.
    let faults = FaultPlaneConfig::new().with_site("flash.read_fail", FaultSpec::always());
    let mut ftl = faulty_ftl(7, FtlConfig::default().with_read_retry_max(0), faults);
    for lba in 0..60u64 {
        ftl.write(Lba(lba), &block(0x3C)).unwrap();
    }
    let mut corrected = 0u64;
    let mut uncorrectable = 0u64;
    let mut out = block(0);
    for lba in 0..60u64 {
        match ftl.read(Lba(lba), &mut out) {
            Ok(_) => corrected += 1,
            Err(FtlError::Uncorrectable { .. }) => uncorrectable += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let t = ftl.telemetry();
    assert!(corrected > 0, "some reads must be ECC-served");
    assert!(uncorrectable > 0, "some reads must stay unreadable");
    assert_eq!(t.ecc_corrected + t.silent_corruptions, corrected);
    assert_eq!(t.uncorrectable_reads, uncorrectable);
}

#[test]
fn silent_corruption_is_caught_by_dif_but_not_without_it() {
    let faults = || FaultPlaneConfig::new().with_site("flash.read_fail", FaultSpec::always());
    // Without DIF: silently corrupted data is served as a normal read.
    let mut plain = faulty_ftl(9, FtlConfig::default().with_read_retry_max(0), faults());
    for lba in 0..60u64 {
        plain.write(Lba(lba), &block(0x3C)).unwrap();
    }
    let mut out = block(0);
    let mut silently_wrong = 0u64;
    for lba in 0..60u64 {
        if let Ok(ReadOutcome::Mapped { .. }) = plain.read(Lba(lba), &mut out) {
            if out != block(0x3C) {
                silently_wrong += 1;
            }
        }
    }
    assert!(plain.telemetry().silent_corruptions > 0);
    assert_eq!(
        silently_wrong,
        plain.telemetry().silent_corruptions,
        "every silent corruption serves wrong data undetected"
    );

    // With DIF: the same fault stream turns silent corruptions into loud
    // guard mismatches; no wrong data reaches the host.
    let mut guarded = faulty_ftl(
        9,
        FtlConfig::default().with_read_retry_max(0).with_dif(true),
        faults(),
    );
    for lba in 0..60u64 {
        guarded.write(Lba(lba), &block(0x3C)).unwrap();
    }
    let mut mismatches = 0u64;
    for lba in 0..60u64 {
        match guarded.read(Lba(lba), &mut out) {
            Ok(ReadOutcome::GuardMismatch { .. }) => mismatches += 1,
            Ok(ReadOutcome::Mapped { .. }) => assert_eq!(out, block(0x3C)),
            Ok(other) => panic!("unexpected outcome {other:?}"),
            Err(FtlError::Uncorrectable { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(guarded.telemetry().silent_corruptions > 0);
    assert_eq!(mismatches, guarded.telemetry().silent_corruptions);
}

#[test]
fn program_failure_remaps_to_another_block() {
    let faults = FaultPlaneConfig::new()
        .with_site("flash.program_fail", FaultSpec::always().with_max_fires(1));
    let mut ftl = faulty_ftl(5, FtlConfig::default(), faults);
    // The very first program fails; the write must still succeed elsewhere.
    ftl.write(Lba(0), &block(0xAA)).unwrap();
    let mut out = block(0);
    ftl.read(Lba(0), &mut out).unwrap();
    assert_eq!(out, block(0xAA));
    let t = ftl.telemetry();
    assert_eq!(t.bad_block_remaps, 1);
    assert_eq!(ftl.remap_events(), 1);
    assert!(!ftl.is_read_only());
    assert_eq!(ftl.nand().telemetry().grown_bad, 1);
}

#[test]
fn remap_preserves_valid_data_in_the_failing_block() {
    // Fill several pages of the active block, then fail the next program:
    // retirement must evacuate the live pages before marking it bad.
    let faults = FaultPlaneConfig::new().with_site(
        "flash.program_fail",
        FaultSpec::always().with_window(10, 11),
    );
    let mut ftl = faulty_ftl(5, FtlConfig::default(), faults);
    for lba in 0..30u64 {
        ftl.write(Lba(lba), &block(lba as u8 + 1)).unwrap();
    }
    let mut out = block(0);
    for lba in 0..30u64 {
        let outcome = ftl.read(Lba(lba), &mut out).unwrap();
        assert!(matches!(outcome, ReadOutcome::Mapped { .. }), "lba {lba}");
        assert_eq!(out, block(lba as u8 + 1), "lba {lba}");
    }
    assert_eq!(ftl.telemetry().bad_block_remaps, 1);
    assert!(
        ftl.telemetry().gc_relocated > 0,
        "live pages were evacuated"
    );
}

#[test]
fn remap_budget_exhaustion_degrades_to_read_only() {
    let faults = FaultPlaneConfig::new()
        .with_site("flash.program_fail", FaultSpec::always().with_max_fires(1));
    let mut ftl = faulty_ftl(5, FtlConfig::default().with_remap_budget(0), faults);
    // The triggering write completes (in-flight operations finish)...
    ftl.write(Lba(0), &block(0x11)).unwrap();
    assert!(ftl.is_read_only());
    assert_eq!(ftl.telemetry().read_only, 1.0);
    // ...but subsequent mutations are rejected while reads keep working.
    assert_eq!(ftl.write(Lba(1), &block(0x22)), Err(FtlError::ReadOnly));
    assert_eq!(ftl.trim(Lba(0)), Err(FtlError::ReadOnly));
    let mut out = block(0);
    ftl.read(Lba(0), &mut out).unwrap();
    assert_eq!(out, block(0x11));
}

#[test]
fn journal_reservation_reduces_exported_capacity() {
    let plain = faulty_ftl(1, FtlConfig::default(), FaultPlaneConfig::new());
    let journaled = faulty_ftl(
        1,
        FtlConfig::default()
            .with_journal_checkpoint_every(1)
            .with_journal_blocks(2),
        FaultPlaneConfig::new(),
    );
    // tiny flash: 16 blocks x 64 pages; auto OP = 2 blocks; journal = 2.
    assert_eq!(plain.capacity_lbas(), 896);
    assert_eq!(journaled.capacity_lbas(), 768);
}

#[test]
fn journal_replay_restores_trims_and_mappings_exactly() {
    let config = FtlConfig::default()
        .with_journal_checkpoint_every(8)
        .with_journal_blocks(2);
    let mut ftl = faulty_ftl(1, config, FaultPlaneConfig::new());
    for lba in 0..100u64 {
        ftl.write(Lba(lba), &block((lba % 251) as u8)).unwrap();
    }
    for lba in (0..100u64).step_by(3) {
        ftl.write(Lba(lba), &block(0xEE)).unwrap();
    }
    for lba in (0..100u64).step_by(7) {
        ftl.trim(Lba(lba)).unwrap();
    }
    // An orderly shutdown flushes the buffered journal tail; after that the
    // on-flash journal covers every mutation.
    ftl.flush().unwrap();
    assert!(ftl.telemetry().journal_checkpoints > 0);
    assert_eq!(ftl.journal_pending(), 0, "flush leaves no buffered tail");
    let table_before = ftl.l2p_snapshot().unwrap();

    // Power cut: DRAM (and the in-memory table) is lost; flash survives.
    let (_lost_dram, nand) = ftl.into_parts();
    let recovered = Ftl::recover(fresh_dram(2), nand, config).unwrap();
    assert!(recovered.telemetry().journal_replayed > 0);
    assert_eq!(
        recovered.l2p_snapshot().unwrap(),
        table_before,
        "replayed L2P table must be byte-identical"
    );

    // Spot-check semantics: trimmed LBAs stay trimmed (the journal's whole
    // point), and surviving data reads back.
    let mut recovered = recovered;
    let mut out = block(0);
    for lba in 0..100u64 {
        if lba % 7 == 0 {
            assert_eq!(recovered.peek_mapping(Lba(lba)).unwrap(), None, "lba {lba}");
        } else {
            let expected = if lba % 3 == 0 {
                0xEE
            } else {
                (lba % 251) as u8
            };
            recovered.read(Lba(lba), &mut out).unwrap();
            assert_eq!(out[0], expected, "lba {lba}");
        }
    }
}

#[test]
fn without_journal_trims_resurrect_after_crash() {
    // The contrast case documenting why the journal exists.
    let config = FtlConfig::default();
    let mut ftl = faulty_ftl(1, config, FaultPlaneConfig::new());
    ftl.write(Lba(4), &block(0x44)).unwrap();
    ftl.trim(Lba(4)).unwrap();
    assert_eq!(ftl.peek_mapping(Lba(4)).unwrap(), None);
    let (_lost, nand) = ftl.into_parts();
    let recovered = Ftl::recover(fresh_dram(2), nand, config).unwrap();
    assert!(
        recovered.peek_mapping(Lba(4)).unwrap().is_some(),
        "journal-less recovery resurrects trimmed data"
    );
}

#[test]
fn power_loss_fault_takes_device_offline_until_remount() {
    let config = FtlConfig::default()
        .with_journal_checkpoint_every(1)
        .with_journal_blocks(2);
    // The 21st mutation attempt hits the power cut.
    let faults = FaultPlaneConfig::new()
        .with_site("ftl.power_loss", FaultSpec::always().with_window(20, 21));
    let mut ftl = faulty_ftl(3, config, faults);
    let mut cut_at = None;
    for lba in 0..40u64 {
        match ftl.write(Lba(lba), &block(0x77)) {
            Ok(_) => {}
            Err(FtlError::PowerLoss) => {
                cut_at = Some(lba);
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(cut_at, Some(20), "power cut fires at the configured tick");
    assert_eq!(ftl.telemetry().power_losses, 1);
    // Everything fails while offline.
    let mut out = block(0);
    assert_eq!(ftl.read(Lba(0), &mut out), Err(FtlError::PowerLoss));
    assert_eq!(ftl.write(Lba(0), &block(1)), Err(FtlError::PowerLoss));
    assert_eq!(ftl.trim(Lba(0)), Err(FtlError::PowerLoss));
    assert_eq!(ftl.flush(), Err(FtlError::PowerLoss));
    // Remount: the 20 completed writes are all there.
    let (_lost, nand) = ftl.into_parts();
    let mut recovered = Ftl::recover(fresh_dram(4), nand, config).unwrap();
    for lba in 0..20u64 {
        recovered.read(Lba(lba), &mut out).unwrap();
        assert_eq!(out, block(0x77), "lba {lba}");
    }
    assert_eq!(recovered.peek_mapping(Lba(20)).unwrap(), None);
    // And the remounted device accepts new writes.
    recovered.write(Lba(20), &block(0x78)).unwrap();
}

#[test]
fn journal_region_exhaustion_degrades_to_read_only() {
    // One journal block of 64 pages, one entry per checkpoint: the 64
    // mutations fill the region; the 65th finds it full and degrades.
    let config = FtlConfig::default()
        .with_journal_checkpoint_every(1)
        .with_journal_blocks(1);
    let mut ftl = faulty_ftl(1, config, FaultPlaneConfig::new());
    for lba in 0..64u64 {
        ftl.write(Lba(lba), &block(1)).unwrap();
        assert!(!ftl.is_read_only(), "lba {lba}");
    }
    ftl.write(Lba(64), &block(1)).unwrap();
    assert!(ftl.is_read_only());
    assert_eq!(ftl.write(Lba(65), &block(1)), Err(FtlError::ReadOnly));
    // Reads are unaffected by the degradation.
    let mut out = block(0);
    ftl.read(Lba(0), &mut out).unwrap();
    assert_eq!(out, block(1));
}

#[test]
fn flush_checkpoints_buffered_entries() {
    let config = FtlConfig::default()
        .with_journal_checkpoint_every(1000)
        .with_journal_blocks(2);
    let mut ftl = faulty_ftl(1, config, FaultPlaneConfig::new());
    for lba in 0..10u64 {
        ftl.write(Lba(lba), &block(2)).unwrap();
    }
    ftl.trim(Lba(3)).unwrap();
    assert_eq!(ftl.journal_pending(), 11);
    assert_eq!(ftl.telemetry().journal_checkpoints, 0);
    ftl.flush().unwrap();
    assert_eq!(ftl.journal_pending(), 0);
    assert_eq!(ftl.telemetry().journal_checkpoints, 1);
    // The flushed trim survives a crash even though the interval (1000)
    // was never reached.
    let (_lost, nand) = ftl.into_parts();
    let recovered = Ftl::recover(fresh_dram(2), nand, config).unwrap();
    assert_eq!(recovered.peek_mapping(Lba(3)).unwrap(), None);
}

#[test]
fn identical_seeds_replay_identical_fault_streams() {
    let run = |seed: u64| {
        let faults = FaultPlaneConfig::new()
            .with_site("flash.read_fail", FaultSpec::with_probability(0.3))
            .with_site("flash.program_fail", FaultSpec::with_probability(0.02));
        let mut ftl = faulty_ftl(seed, FtlConfig::default(), faults);
        let mut out = block(0);
        for round in 0..4u64 {
            for lba in 0..40u64 {
                let _ = ftl.write(Lba(lba), &block((round * 40 + lba) as u8));
            }
            for lba in 0..40u64 {
                let _ = ftl.read(Lba(lba), &mut out);
            }
        }
        ftl.shared_telemetry().snapshot().to_json().to_string()
    };
    assert_eq!(run(11), run(11), "same seed, same telemetry");
    assert_ne!(run(11), run(12), "different seed diverges");
}
