//! The deterministic parallel campaign runner's core promise, held at the
//! experiment level: sharding a reproduction across worker threads changes
//! wall-clock time and nothing else — the emitted JSON is byte-identical
//! for any thread count.

use ssdhammer_bench::{ablations, sec43, table1};
use ssdhammer_simkit::json::ToJson;

#[test]
fn sec43_json_is_byte_identical_across_thread_counts() {
    let base = sec43::run_with_threads(11, 1).to_json().to_string_pretty();
    for threads in [2, 8] {
        let other = sec43::run_with_threads(11, threads)
            .to_json()
            .to_string_pretty();
        assert_eq!(base, other, "§4.3 JSON diverged at {threads} threads");
    }
}

#[test]
fn table1_json_is_byte_identical_across_thread_counts() {
    let base = table1::run_with_threads(3, 1).to_json().to_string_pretty();
    let four = table1::run_with_threads(3, 4).to_json().to_string_pretty();
    assert_eq!(base, four, "Table 1 JSON diverged at 4 threads");
}

#[test]
fn amplification_sweep_is_identical_across_thread_counts() {
    let base = ablations::amplification_sweep_threads(5, 1);
    let four = ablations::amplification_sweep_threads(5, 4);
    assert_eq!(
        format!("{base:?}"),
        format!("{four:?}"),
        "ablation sweep diverged at 4 threads"
    );
}
