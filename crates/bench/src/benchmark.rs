//! `repro bench` — the perf baseline: wall-clock timings for the
//! simulator's hot paths, written to `BENCH_9.json`.
//!
//! Four scenarios are timed:
//!
//! 1. **fig1 hammer loop** — the two-sided FTL rowhammer primitive.
//! 2. **fig3 end-to-end** — the ext4 exploit; the paper-prototype scale
//!    under the default mode, the fast demo under `--quick` (CI smoke).
//! 3. **sec43 Monte Carlo** — the §4.3 probability-of-success campaign.
//! 4. **multi-queue engine at queue-depth saturation** — batched
//!    submit/process/drain of read commands through the allocation-free
//!    completion path (`drain_completions_into` + `recycle_buffer`).
//!
//! The document separates *deterministic result fields* (per-scenario
//! `result` subtrees — byte-identical for a fixed seed at any thread
//! count) from *timing fields* (`wall_secs`, `host_iops`, `speedup_*`),
//! which vary run to run. [`BenchReport::deterministic`] carries only the
//! former, so tests can assert determinism without racing the host clock.
//! All host-clock access goes through [`crate::harness::wallclock`], the
//! one sanctioned `Instant` user (lint rule D1): timings are reporting
//! only and never feed back into simulated state.

use ssdhammer_nvme::{CmdResult, Command, Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::Lba;

use crate::harness::wallclock;
use crate::{fig1, fig3, sec43};

/// Pre-campaign wall time of `repro fig3 --full` on the reference machine,
/// recorded before the hot-path optimization work. `speedup_vs_baseline`
/// in the document is measured against this.
pub const BASELINE_FIG3_FULL_WALL_SECS: f64 = 235.6;

/// Schema tag written at the document root; bump on layout changes.
pub const SCHEMA: &str = "ssdhammer-bench-v1";

/// The output of one bench run: the full document (timings included) and
/// the timing-free subtree.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The complete `BENCH_9.json` document.
    pub doc: Json,
    /// Only the deterministic parts: schema, parameters, and each
    /// scenario's `result` subtree. Byte-identical for a fixed `(seed,
    /// quick)` at any `threads` value and across repeated runs.
    pub deterministic: Json,
}

/// Runs `f` once, returning its wall-clock seconds and its value.
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let mut f = Some(f);
    let mut slot = None;
    let secs = wallclock::time_once(&mut || {
        slot = Some((f.take().expect("timed closure runs once"))());
    });
    (secs, slot.expect("timed closure ran"))
}

/// The multi-queue engine at queue-depth saturation: bursts of `depth`
/// reads over a pre-written namespace, batched through `submit_batch` /
/// `process_all` / `drain_completions_into`, buffers recycled. Returns the
/// deterministic result subtree and the command count.
fn mq_saturation(seed: u64, quick: bool) -> (Json, u64) {
    const NS_BLOCKS: u64 = 1024;
    const DEPTH: usize = 32;
    let bursts: u64 = if quick { 200 } else { 20_000 };

    let mut ssd = Ssd::build(SsdConfig::test_small(seed));
    let ns = ssd.create_namespace(NS_BLOCKS).expect("namespace");
    let qp = ssd.create_queue_pair(DEPTH);
    // Map half the namespace so the read mix covers both the mapped flash
    // path and the unmapped fast path.
    for lba in 0..NS_BLOCKS / 2 {
        let batch = [Command::Write {
            ns,
            lba: Lba(lba),
            data: vec![lba as u8; ssdhammer_simkit::BLOCK_SIZE].into_boxed_slice(),
        }];
        ssd.submit_batch(qp, &batch).expect("submit write");
        ssd.process_all();
        for c in ssd.drain_completions(qp).expect("drain writes") {
            assert!(c.is_ok(), "setup write failed");
        }
    }

    let mut commands = 0u64;
    let mut mapped = 0u64;
    let mut device_us = 0.0f64;
    let mut completions = Vec::with_capacity(DEPTH);
    let mut batch = Vec::with_capacity(DEPTH);
    for burst in 0..bursts {
        batch.clear();
        for i in 0..DEPTH as u64 {
            batch.push(Command::Read {
                ns,
                lba: Lba((burst * DEPTH as u64 + i) % NS_BLOCKS),
            });
        }
        ssd.submit_batch(qp, &batch).expect("submit batch");
        ssd.process_all();
        ssd.drain_completions_into(qp, &mut completions)
            .expect("drain");
        for c in completions.drain(..) {
            commands += 1;
            device_us += c.latency().as_secs_f64() * 1e6;
            match c.result {
                CmdResult::Read { data, mapped: m } => {
                    mapped += u64::from(m);
                    ssd.recycle_buffer(data);
                }
                other => panic!("expected read completion, got {other:?}"),
            }
        }
    }
    let result = Json::obj([
        ("queue_depth", Json::from(DEPTH)),
        ("commands", Json::from(commands)),
        ("mapped_reads", Json::from(mapped)),
        (
            "mean_device_latency_us",
            Json::from(device_us / commands as f64),
        ),
    ]);
    (result, commands)
}

/// Runs the four timed hot paths and assembles the report.
///
/// `quick` substitutes the fig3 fast demo for the paper-prototype run and
/// shrinks the queue-saturation loop — the CI smoke configuration; the
/// committed `BENCH_9.json` comes from a non-quick run.
#[must_use]
pub fn run(seed: u64, threads: usize, quick: bool) -> BenchReport {
    let (fig1_wall, fig1_result) = timed(|| fig1::run(seed).to_json());

    let (fig3_wall, fig3_result) = if quick {
        timed(|| fig3::run(seed).to_json())
    } else {
        timed(|| fig3::run_full_json(seed))
    };

    let (mc_wall, mc_result) = timed(|| sec43::run_with_threads(seed, threads).to_json());

    let (mq_wall, (mq_result, mq_commands)) = timed(|| mq_saturation(seed, quick));

    let scenario = |result: &Json, timing: Vec<(&str, Json)>| {
        let mut pairs = vec![("result", result.clone())];
        pairs.extend(timing);
        Json::obj(pairs)
    };

    let mut fig3_timing = vec![("wall_secs", Json::from(fig3_wall))];
    if !quick {
        fig3_timing.push((
            "speedup_vs_baseline",
            Json::from(BASELINE_FIG3_FULL_WALL_SECS / fig3_wall),
        ));
    }

    let scenarios = Json::obj([
        (
            "fig1_hammer",
            scenario(&fig1_result, vec![("wall_secs", Json::from(fig1_wall))]),
        ),
        ("fig3_e2e", scenario(&fig3_result, fig3_timing)),
        (
            "sec43_monte_carlo",
            scenario(&mc_result, vec![("wall_secs", Json::from(mc_wall))]),
        ),
        (
            "mq_qd_saturation",
            scenario(
                &mq_result,
                vec![
                    ("wall_secs", Json::from(mq_wall)),
                    ("host_iops", Json::from(mq_commands as f64 / mq_wall)),
                ],
            ),
        ),
    ]);

    let params = [
        ("schema", Json::from(SCHEMA)),
        ("seed", Json::from(seed)),
        ("threads", Json::from(threads)),
        ("quick", Json::from(quick)),
    ];

    // `threads` is a run parameter, not a result — it must NOT appear in
    // the deterministic view, whose whole point is that thread count
    // never changes result bytes.
    let det_params = [
        ("schema", Json::from(SCHEMA)),
        ("seed", Json::from(seed)),
        ("quick", Json::from(quick)),
    ];

    let deterministic = Json::obj(det_params.into_iter().chain([(
        "scenarios",
        Json::obj([
            ("fig1_hammer", fig1_result.clone()),
            ("fig3_e2e", fig3_result.clone()),
            ("sec43_monte_carlo", mc_result.clone()),
            ("mq_qd_saturation", mq_result.clone()),
        ]),
    )]));

    let doc = Json::obj(params.into_iter().chain([
        (
            "baseline",
            Json::obj([(
                "fig3_full_wall_secs_pre_change",
                Json::from(BASELINE_FIG3_FULL_WALL_SECS),
            )]),
        ),
        ("scenarios", scenarios),
    ]));

    BenchReport { doc, deterministic }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The non-timing fields must be byte-identical across thread counts
    /// and repeated runs at a fixed seed (`--quick` keeps this fast).
    #[test]
    fn quick_bench_deterministic_across_threads_and_runs() {
        let a = run(7, 1, true).deterministic.to_string_pretty();
        let b = run(7, 4, true).deterministic.to_string_pretty();
        let c = run(7, 1, true).deterministic.to_string_pretty();
        assert_eq!(a, b, "threads=1 vs threads=4 deterministic subtree");
        assert_eq!(a, c, "repeated run deterministic subtree");
    }

    /// The document must survive a parse round-trip and carry the schema
    /// tag plus all four scenario keys.
    #[test]
    fn document_parses_and_has_required_keys() {
        let report = run(7, 2, true);
        let text = report.doc.to_string_pretty();
        let reparsed = Json::parse(&text).expect("BENCH document parses");
        let rendered = reparsed.to_string_pretty();
        for key in [
            "\"schema\"",
            "\"baseline\"",
            "\"fig1_hammer\"",
            "\"fig3_e2e\"",
            "\"sec43_monte_carlo\"",
            "\"mq_qd_saturation\"",
            "\"wall_secs\"",
        ] {
            assert!(rendered.contains(key), "missing {key}");
        }
    }
}
