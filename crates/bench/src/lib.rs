//! # ssdhammer-bench
//!
//! The experiment library regenerating **every table and figure** of
//! *Rowhammering Storage Devices* (HotStorage '21), shared between the
//! Criterion benches (`benches/`) and the `repro` binary.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — minimal access rate to trigger bitflips |
//! | [`fig1`] | Figure 1 — two-sided FTL rowhammering redirects an LBA |
//! | [`fig2`] | Figure 2 — direct vs helper-VM setups |
//! | [`fig3`] | Figure 3 / §4.2 — end-to-end ext4 indirect-block exploit |
//! | [`sec43`] | §4.3 — probability of success |
//! | [`sec5`] | §5 — mitigations |
//! | [`sec23`] | §2.3 — NVMe-rate feasibility |
//!
//! The [`ablations`] module additionally sweeps the design choices called
//! out in DESIGN.md (amplification, fast path, mapping structure, victim
//! activity), the [`faults`] module exercises the deterministic
//! fault-injection plane against the FTL recovery stack, and the
//! [`torture`] module enumerates power-cut crash points across every
//! recovery-critical site and checks each recovery against a shadow-model
//! oracle (DESIGN.md §17). The [`fuzz`] module (`repro fuzz`) grows that
//! oracle into a model-based fuzzer: seeded random op interleavings are
//! differentially checked against the shadow model, divergences
//! auto-shrink to minimal repros, and the committed `corpus/` directory
//! replays them as regression tests (DESIGN.md §18).
//!
//! Every experiment module exposes a unit struct implementing
//! [`scenario::Scenario`] — one uniform `run(cfg, seed, threads) -> Json`
//! / `render` entry point that the `repro` binary's subcommand registry
//! dispatches through. The [`benchmark`] module (`repro bench`) times the
//! hot paths and writes `BENCH_9.json`.
//!
//! Run `cargo run -p ssdhammer-bench --bin repro -- all` for the complete
//! text reproduction, or `cargo bench` for the timed harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod attacks;
pub mod benchmark;
pub mod defenses;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fuzz;
pub mod harness;
pub mod scenario;
pub mod sec23;
pub mod sec43;
pub mod sec5;
pub mod table1;
pub mod torture;
