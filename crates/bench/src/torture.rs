//! Power-cut torture campaign (`repro torture`): deterministically
//! enumerate every crash point a recovery-critical workload crosses —
//! journal appends, meta-mirror write-throughs, grown-bad-block remaps,
//! scrub repair passes, explicit L2P flushes, and the classic pre-op
//! `ftl.power_loss` gate — cut power at each one, remount with
//! [`Ftl::recover`], and check the recovered device against a shadow
//! model.
//!
//! The oracle accepts exactly three honest outcomes per crash point:
//! the recovered state matches the shadow model ([`CrashVerdict::Clean`]),
//! or the device degraded *loudly* — typed errors, read-only — with
//! nothing silently wrong ([`CrashVerdict::LoudDegraded`]). The LBA whose
//! operation the cut interrupted is *uncertain*: either its pre-op or its
//! post-op content is acceptable, never anything else. Serving bytes the
//! shadow model rules out, without any error, is
//! [`CrashVerdict::SilentCorruption`] — the failure the campaign exists
//! to catch. Recovery must also be idempotent: remounting twice yields
//! the same L2P table and replay telemetry as remounting once.
//!
//! Crash points come from a census pass ([`census_config`]): the workload
//! runs once with every site configured at probability zero, the plane
//! counts crossings, and [`TorturePlan::enumerate`] turns the census into
//! the schedule — exhaustive in the default configuration, seeded
//! stratified sampling at `--full` scale. Each point then replays as one
//! shard under a [`Supervisor`]: panics are isolated with the shard's
//! seed captured, runaway shards become typed timeouts, and
//! `--checkpoint`/`--resume` persist completed shards so an interrupted
//! campaign finishes bit-identical to an uninterrupted one.

use std::path::Path;

use ssdhammer_dram::{DramGeometry, DramModule, MappingKind, ModuleProfile};
use ssdhammer_flash::{FlashArray, FlashGeometry};
use ssdhammer_ftl::{Ftl, FtlConfig, FtlError, ReadOutcome, CRASH_SITES};
use ssdhammer_simkit::faultplane::{FaultPlane, FaultPlaneConfig, FaultSpec};
use ssdhammer_simkit::fuzz::ShadowDisk;
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::supervisor::{JsonCodec, ShardOutcome, SupervisedReport, Supervisor};
use ssdhammer_simkit::telemetry::Telemetry;
use ssdhammer_simkit::torture::{
    census_config, measure_crossings, CrashPoint, CrashVerdict, SiteCrossings, TorturePlan,
};
use ssdhammer_simkit::{Lba, SimClock, SimDuration, BLOCK_SIZE};

/// Structured-result schema identifier.
pub const SCHEMA: &str = "ssdhammer-torture-v1";

/// One torture shard's result: which crossing was cut and what the oracle
/// concluded about the recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashOutcome {
    /// The crash site that was cut.
    pub site: String,
    /// Which crossing of the site was cut (per-site consult index).
    pub index: u64,
    /// The oracle's verdict on the recovered device.
    pub verdict: CrashVerdict,
}

impl ToJson for CrashOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("site", Json::str(self.site.as_str())),
            ("index", Json::from(self.index)),
            ("verdict", self.verdict.to_json()),
        ])
    }
}

/// Campaign options beyond `(seed, threads)` — the `repro torture` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct TortureOpts<'a> {
    /// Larger workload and a sampling (non-exhaustive) crash schedule.
    pub full: bool,
    /// Persist completed shards to this checkpoint file.
    pub checkpoint: Option<&'a Path>,
    /// Restore completed shards from the checkpoint before running.
    pub resume: bool,
    /// Stop launching new shards after this many (kill-switch used by the
    /// checkpoint/resume round-trip in CI; skipped shards mark the run
    /// degraded).
    pub abort_after: Option<usize>,
}

/// Every site the campaign registers: the five in-operation
/// [`CRASH_SITES`] plus the pre-operation `ftl.power_loss` gate.
#[must_use]
pub fn torture_sites() -> Vec<&'static str> {
    let mut sites = CRASH_SITES.to_vec();
    sites.push("ftl.power_loss");
    sites
}

// ---- workload ---------------------------------------------------------------

/// One deterministic workload step.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write `[fill; BLOCK_SIZE]` to the LBA.
    Write(u64, u8),
    /// TRIM the LBA.
    Trim(u64),
    /// Explicit journal flush (the NVMe Flush path).
    Flush,
    /// One background scrub chunk (8 L2P entries, 4 patrol reads).
    Scrub,
}

/// LBA span the workload (and the oracle readback) covers.
fn lba_span(full: bool) -> u64 {
    if full {
        24
    } else {
        12
    }
}

/// The recovery-critical workload: write rounds with interleaved TRIMs,
/// explicit flushes, and scrub chunks, sized to cross every registered
/// crash site while fitting the tiny journal region.
fn workload(full: bool) -> Vec<Op> {
    let span = lba_span(full);
    let rounds = if full { 3 } else { 2 };
    let mut ops = Vec::new();
    for round in 0..rounds {
        for lba in 0..span {
            ops.push(Op::Write(lba, fill_byte(lba, round)));
        }
        if round + 1 == rounds {
            // TRIMs late in the schedule: their durability is exactly what
            // journal-append and meta-mirror cuts stress.
            for lba in (1..span).step_by(4) {
                ops.push(Op::Trim(lba));
            }
        }
        ops.push(Op::Flush);
        ops.push(Op::Scrub);
    }
    ops
}

/// Deterministic content for `(lba, round)` — distinct per round so stale
/// data is distinguishable from the current version.
fn fill_byte(lba: u64, round: u64) -> u8 {
    (round as u8)
        .wrapping_mul(64)
        .wrapping_add(lba as u8)
        .wrapping_add(1)
}

/// Crash-point budget for the schedule: generous enough that the default
/// workload enumerates exhaustively, tight enough that `--full` exercises
/// the stratified-sampling path.
fn plan_limit(full: bool) -> usize {
    if full {
        120
    } else {
        128
    }
}

/// Base (non-crash) faults: one deterministic program failure at the
/// third program attempt — a data page, so the workload crosses the
/// grown-bad-block retirement path exactly once.
fn base_faults() -> FaultPlaneConfig {
    FaultPlaneConfig::new().with_site(
        "flash.program_fail",
        FaultSpec::always().with_window(2, 3).with_max_fires(1),
    )
}

/// The device-under-torture configuration: journal every mutation (so
/// TRIM durability is on the line at every cut), two journal blocks, and
/// the resident metadata mirror (so meta write-throughs happen at all).
fn torture_config() -> FtlConfig {
    FtlConfig::default()
        .with_journal_checkpoint_every(1)
        .with_journal_blocks(2)
        .with_meta_resident(true)
}

/// Builds the tiny device under torture on `clock`. Flash seed is fixed
/// (no factory-bad blocks in the tiny geometry); the fault plane is
/// seeded with the workload seed so census and torture runs share one
/// deterministic consult stream per site.
fn device(seed: u64, clock: &SimClock, faults: &FaultPlaneConfig) -> Ftl {
    let dram = DramModule::builder(DramGeometry::tiny_test())
        .profile(ModuleProfile::invulnerable())
        .mapping(MappingKind::Linear)
        .seed(seed)
        .without_timing()
        .build(clock.clone());
    let mut nand = FlashArray::new(FlashGeometry::tiny_test(), clock.clone(), 1);
    nand.set_fault_plane(FaultPlane::new(seed, faults));
    Ftl::new(dram, nand, torture_config()).expect("torture FTL assembly")
}

fn fresh_dram(seed: u64) -> DramModule {
    DramModule::builder(DramGeometry::tiny_test())
        .profile(ModuleProfile::invulnerable())
        .mapping(MappingKind::Linear)
        .seed(seed)
        .without_timing()
        .build(SimClock::new())
}

// ---- shadow model -----------------------------------------------------------

// The oracle state lives in [`ShadowDisk`] (shared with the fuzzer);
// these adapters translate workload ops into its commit/interrupt calls.

/// Applies a completed (host-acknowledged) operation.
fn commit(shadow: &mut ShadowDisk, op: Op) {
    match op {
        Op::Write(lba, fill) => shadow.commit_write(lba, fill),
        Op::Trim(lba) => shadow.commit_trim(lba),
        Op::Flush | Op::Scrub => {}
    }
}

/// Marks the interrupted operation's LBA as uncertain.
fn interrupt(shadow: &mut ShadowDisk, op: Op) {
    match op {
        Op::Write(lba, fill) => shadow.interrupt_write(lba, fill),
        Op::Trim(lba) => shadow.interrupt_trim(lba),
        Op::Flush | Op::Scrub => {}
    }
}

// ---- census + per-point replay ----------------------------------------------

/// Runs the workload once with every crash site registered at probability
/// zero and reads back how often each was crossed.
fn census(seed: u64, full: bool) -> Vec<SiteCrossings> {
    let sites = torture_sites();
    let faults = census_config(&base_faults(), &sites);
    let clock = SimClock::new();
    let mut ftl = device(seed, &clock, &faults);
    for op in workload(full) {
        apply(&mut ftl, op).expect("census workload must complete uncut");
    }
    measure_crossings(ftl.fault_plane(), &sites)
}

fn apply(ftl: &mut Ftl, op: Op) -> Result<(), FtlError> {
    match op {
        Op::Write(lba, fill) => {
            let data = vec![fill; BLOCK_SIZE];
            ftl.write(Lba(lba), &data).map(|_| ())
        }
        Op::Trim(lba) => ftl.trim(Lba(lba)),
        Op::Flush => ftl.flush(),
        Op::Scrub => ftl.scrub_chunk(8, 4),
    }
}

/// Replays the workload with power cut at `point`, remounts, and checks
/// the recovered device against the shadow model.
fn run_crash_point(seed: u64, full: bool, point: &CrashPoint, clock: &SimClock) -> CrashOutcome {
    let sites = torture_sites();
    let faults = census_config(&base_faults(), &sites).with_site(point.site.clone(), point.spec());
    let span = lba_span(full);
    let mut ftl = device(seed, clock, &faults);
    let mut shadow = ShadowDisk::new(span);
    let mut loud: Vec<String> = Vec::new();
    let mut cut = false;
    for op in workload(full) {
        match apply(&mut ftl, op) {
            Ok(()) => commit(&mut shadow, op),
            Err(FtlError::PowerLoss) => {
                interrupt(&mut shadow, op);
                cut = true;
                break;
            }
            // Honest pre-cut degradation (e.g. read-only): the operation
            // did not happen; the shadow stays put and the workload
            // continues toward the scheduled cut.
            Err(e) => loud.push(format!("workload: {e}")),
        }
    }
    let verdict = judge(seed, span, ftl, &shadow, cut, point, loud);
    CrashOutcome {
        site: point.site.clone(),
        index: point.index,
        verdict,
    }
}

/// The invariant oracle: remount twice (idempotency), then read back the
/// whole LBA span against the shadow model.
fn judge(
    seed: u64,
    span: u64,
    ftl: Ftl,
    shadow: &ShadowDisk,
    cut: bool,
    point: &CrashPoint,
    mut loud: Vec<String>,
) -> CrashVerdict {
    if !cut || ftl.fault_plane().fired(&point.site) == 0 {
        return CrashVerdict::NotTriggered;
    }
    // First remount. The recovered FTL shares the run's fault plane, whose
    // crash spec is exhausted (max_fires = 1), so recovery itself runs cut-free.
    let config = torture_config();
    let (_lost_dram, nand) = ftl.into_parts();
    let first = match Ftl::recover(fresh_dram(seed ^ 1), nand, config) {
        Ok(f) => f,
        Err(e) => {
            return CrashVerdict::LoudDegraded {
                detail: format!("recover failed: {e}"),
            }
        }
    };
    let snap_once = match first.l2p_snapshot() {
        Ok(s) => s,
        Err(e) => {
            return CrashVerdict::LoudDegraded {
                detail: format!("l2p snapshot failed: {e}"),
            }
        }
    };
    let replayed_once = first.telemetry().journal_replayed;
    // Second remount from the same flash: recovery must be idempotent. A
    // divergence here is an invariant violation, not honest degradation.
    let (_lost_dram, nand) = first.into_parts();
    let mut ftl = match Ftl::recover(fresh_dram(seed ^ 2), nand, config) {
        Ok(f) => f,
        Err(e) => {
            return CrashVerdict::SilentCorruption {
                detail: format!("recovery not idempotent: second remount failed: {e}"),
            }
        }
    };
    match ftl.l2p_snapshot() {
        Ok(snap_twice) if snap_twice == snap_once => {}
        Ok(_) => {
            return CrashVerdict::SilentCorruption {
                detail: "recovery not idempotent: L2P differs across remounts".to_string(),
            }
        }
        Err(e) => {
            return CrashVerdict::SilentCorruption {
                detail: format!("recovery not idempotent: second snapshot failed: {e}"),
            }
        }
    }
    if ftl.telemetry().journal_replayed != replayed_once {
        return CrashVerdict::SilentCorruption {
            detail: "recovery not idempotent: journal replay count differs".to_string(),
        };
    }
    if ftl.is_read_only() {
        loud.push("device read-only after recovery".to_string());
    }
    // Full readback: every LBA must hold content the shadow model allows,
    // or fail loudly.
    let mut buf = vec![0u8; BLOCK_SIZE];
    for lba in 0..span {
        match ftl.read(Lba(lba), &mut buf) {
            Err(e) => loud.push(format!("lba {lba}: {e}")),
            Ok(ReadOutcome::Wild { entry }) => {
                loud.push(format!("lba {lba}: wild entry {entry:#x}"));
            }
            Ok(ReadOutcome::GuardMismatch { ppn }) => {
                loud.push(format!("lba {lba}: guard mismatch at {ppn}"));
            }
            Ok(_) => {
                if !shadow.acceptable(lba, &buf) {
                    return CrashVerdict::SilentCorruption {
                        detail: format!(
                            "lba {lba}: read fill {:#04x}, shadow allows {}",
                            buf[0],
                            shadow.describe(lba)
                        ),
                    };
                }
            }
        }
    }
    if loud.is_empty() {
        CrashVerdict::Clean
    } else {
        CrashVerdict::LoudDegraded {
            detail: loud.join("; "),
        }
    }
}

// ---- campaign ---------------------------------------------------------------

fn encode_outcome(o: &CrashOutcome) -> Json {
    o.to_json()
}

fn decode_outcome(j: &Json) -> Option<CrashOutcome> {
    let site = j.get("site").and_then(Json::as_str)?.to_string();
    let index = j.get("index").and_then(Json::as_u64)?;
    let v = j.get("verdict")?;
    let detail = v
        .get("detail")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let verdict = match v.get("status").and_then(Json::as_str)? {
        "clean" => CrashVerdict::Clean,
        "loud_degraded" => CrashVerdict::LoudDegraded { detail },
        "silent_corruption" => CrashVerdict::SilentCorruption { detail },
        "not_triggered" => CrashVerdict::NotTriggered,
        _ => return None,
    };
    Some(CrashOutcome {
        site,
        index,
        verdict,
    })
}

/// Runs the full campaign: census, crash-schedule enumeration, one
/// supervised shard per crash point, merged into the structured result
/// document. The document is bit-identical for any `threads`, and — when
/// checkpointed, killed, and resumed — bit-identical to an uninterrupted
/// run.
#[must_use]
pub fn run_supervised(seed: u64, threads: usize, opts: &TortureOpts<'_>) -> Json {
    let crossings = census(seed, opts.full);
    let plan = TorturePlan::enumerate(&crossings, plan_limit(opts.full), seed);
    let registry = Telemetry::new();
    let mut sup = Supervisor::new(seed)
        .with_tag("torture")
        .with_threads(threads)
        .with_sim_budget(SimDuration::from_secs(600))
        .with_max_retries(1)
        .attach_telemetry(&registry);
    if let Some(n) = opts.abort_after {
        sup = sup.with_stop_after(n);
    }
    // Every shard replays the *same* seed and workload — only the injected
    // cut differs — so the shard closure ignores `ctx.trial.seed` and keys
    // off the trial index alone. The shard clock feeds the watchdog.
    let shard = |ctx: &ssdhammer_simkit::supervisor::ShardCtx| {
        run_crash_point(seed, opts.full, &plan.points[ctx.trial.index], ctx.clock())
    };
    let report = match opts.checkpoint {
        Some(path) => {
            let codec = JsonCodec {
                encode: encode_outcome,
                decode: decode_outcome,
            };
            sup.run_checkpointed(plan.points.len(), path, opts.resume, codec, shard)
                .expect("torture checkpoint")
        }
        None => sup.run(plan.points.len(), shard),
    };
    let doc = document(seed, opts.full, &crossings, &plan, &report);
    count_verdicts(&registry, &plan, &report);
    doc
}

/// Convenience entry without checkpointing.
#[must_use]
pub fn run(seed: u64, threads: usize, full: bool) -> Json {
    run_supervised(
        seed,
        threads,
        &TortureOpts {
            full,
            ..TortureOpts::default()
        },
    )
}

/// Registers and bumps the `torture.*` counters from the merged report.
fn count_verdicts(
    registry: &Telemetry,
    plan: &TorturePlan,
    report: &SupervisedReport<CrashOutcome>,
) {
    let mut clean = 0u64;
    let mut loud = 0u64;
    let mut silent = 0u64;
    let mut not_triggered = 0u64;
    for outcome in report.values() {
        match outcome.verdict {
            CrashVerdict::Clean => clean += 1,
            CrashVerdict::LoudDegraded { .. } => loud += 1,
            CrashVerdict::SilentCorruption { .. } => silent += 1,
            CrashVerdict::NotTriggered => not_triggered += 1,
        }
    }
    registry
        .counter("torture.crash_points")
        .add(plan.points.len() as u64);
    registry.counter("torture.clean").add(clean);
    registry.counter("torture.loud_degraded").add(loud);
    registry.counter("torture.silent_corruption").add(silent);
    registry.counter("torture.not_triggered").add(not_triggered);
}

/// Assembles the structured result document. `resumed` is deliberately
/// omitted: it differs between a resumed and an uninterrupted run of the
/// same campaign, and the document must not.
fn document(
    seed: u64,
    full: bool,
    crossings: &[SiteCrossings],
    plan: &TorturePlan,
    report: &SupervisedReport<CrashOutcome>,
) -> Json {
    let mut clean = 0u64;
    let mut loud = 0u64;
    let mut silent = 0u64;
    let mut not_triggered = 0u64;
    let rows: Vec<Json> = report
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let p = &plan.points[i];
            let mut fields = vec![
                ("site", Json::str(p.site.as_str())),
                ("index", Json::from(p.index)),
                ("shard", Json::str(o.status())),
            ];
            if let ShardOutcome::Ok(out) = o {
                match out.verdict {
                    CrashVerdict::Clean => clean += 1,
                    CrashVerdict::LoudDegraded { .. } => loud += 1,
                    CrashVerdict::SilentCorruption { .. } => silent += 1,
                    CrashVerdict::NotTriggered => not_triggered += 1,
                }
                fields.push(("verdict", out.verdict.to_json()));
            }
            Json::obj(fields)
        })
        .collect();
    let sites: Vec<Json> = crossings
        .iter()
        .map(|s| {
            Json::obj([
                ("site", Json::str(s.site.as_str())),
                ("crossings", Json::from(s.crossings)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("seed", Json::from(seed)),
        ("full", Json::from(full)),
        ("sites", Json::Arr(sites)),
        (
            "plan",
            Json::obj([
                ("crash_points", Json::from(plan.points.len())),
                ("total_crossings", Json::from(plan.total_crossings)),
                ("exhaustive", Json::from(plan.exhaustive)),
            ]),
        ),
        ("degraded", Json::from(report.degraded())),
        (
            "summary",
            Json::obj([
                ("clean", Json::from(clean)),
                ("loud_degraded", Json::from(loud)),
                ("silent_corruption", Json::from(silent)),
                ("not_triggered", Json::from(not_triggered)),
                ("timeouts", Json::from(report.timeouts)),
                ("panics", Json::from(report.panics)),
                ("skipped", Json::from(report.skipped)),
                ("retries", Json::from(report.retries)),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ])
}

/// Renders the campaign document as a table.
#[must_use]
pub fn render(doc: &Json) -> String {
    let mut out =
        String::from("power-cut torture campaign: crash-point enumeration x recovery oracle\n");
    let get_u64 = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    if let Some(plan) = doc.get("plan") {
        out.push_str(&format!(
            "schedule: {} crash points over {} crossings ({})\n",
            get_u64(plan, "crash_points"),
            get_u64(plan, "total_crossings"),
            if plan.get("exhaustive").and_then(Json::as_bool) == Some(true) {
                "exhaustive"
            } else {
                "stratified sample"
            },
        ));
    }
    out.push_str(
        "site                        crossings  points  clean  loud  silent  untriggered\n",
    );
    let results = doc.get("results").and_then(Json::as_arr).unwrap_or(&[]);
    if let Some(sites) = doc.get("sites").and_then(Json::as_arr) {
        for s in sites {
            let name = s.get("site").and_then(Json::as_str).unwrap_or("?");
            let verdict_count = |status: &str| {
                results
                    .iter()
                    .filter(|r| {
                        r.get("site").and_then(Json::as_str) == Some(name)
                            && r.get("verdict")
                                .and_then(|v| v.get("status"))
                                .and_then(Json::as_str)
                                == Some(status)
                    })
                    .count()
            };
            let points = results
                .iter()
                .filter(|r| r.get("site").and_then(Json::as_str) == Some(name))
                .count();
            out.push_str(&format!(
                "{:<27} {:>9} {:>7} {:>6} {:>5} {:>7} {:>12}\n",
                name,
                get_u64(s, "crossings"),
                points,
                verdict_count("clean"),
                verdict_count("loud_degraded"),
                verdict_count("silent_corruption"),
                verdict_count("not_triggered"),
            ));
        }
    }
    if let Some(summary) = doc.get("summary") {
        out.push_str(&format!(
            "totals: clean={} loud={} silent={} untriggered={} timeouts={} panics={} skipped={}\n",
            get_u64(summary, "clean"),
            get_u64(summary, "loud_degraded"),
            get_u64(summary, "silent_corruption"),
            get_u64(summary, "not_triggered"),
            get_u64(summary, "timeouts"),
            get_u64(summary, "panics"),
            get_u64(summary, "skipped"),
        ));
    }
    if doc.get("degraded").and_then(Json::as_bool) == Some(true) {
        out.push_str("WARNING: partial results (degraded run)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_crosses_every_registered_site() {
        let crossings = census(7, false);
        for s in &crossings {
            assert!(
                s.crossings > 0,
                "site {} never crossed by the default workload",
                s.site
            );
        }
        // The default schedule enumerates every crossing of every site.
        let plan = TorturePlan::enumerate(&crossings, plan_limit(false), 7);
        assert!(plan.exhaustive, "default config must be exhaustive");
        assert_eq!(plan.sites().len(), torture_sites().len());
    }

    #[test]
    fn every_enumerated_point_fires_and_none_corrupts_silently() {
        let doc = run(7, 4, false);
        let results = doc.get("results").and_then(Json::as_arr).expect("results");
        assert!(!results.is_empty());
        // Coverage: enumerated sites == sites fired. A `not_triggered`
        // verdict means the schedule and the workload disagree.
        for r in results {
            let status = r
                .get("verdict")
                .and_then(|v| v.get("status"))
                .and_then(Json::as_str)
                .expect("verdict status");
            assert_ne!(
                status,
                "not_triggered",
                "crash point {}@{} never fired",
                r.get("site").and_then(Json::as_str).unwrap_or("?"),
                r.get("index").and_then(Json::as_u64).unwrap_or(0),
            );
            assert_ne!(
                status,
                "silent_corruption",
                "silent corruption at {}@{}: {:?}",
                r.get("site").and_then(Json::as_str).unwrap_or("?"),
                r.get("index").and_then(Json::as_u64).unwrap_or(0),
                r.get("verdict")
                    .and_then(|v| v.get("detail"))
                    .and_then(Json::as_str),
            );
        }
        let summary = doc.get("summary").expect("summary");
        assert_eq!(
            summary.get("silent_corruption").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(summary.get("not_triggered").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn thread_count_does_not_change_the_document() {
        let one = run(11, 1, false).to_string();
        let four = run(11, 4, false).to_string();
        assert_eq!(one, four);
    }

    #[test]
    fn abort_after_zero_aborts_before_the_first_shard() {
        // The boundary: `--abort-after 0` must skip every shard — zero
        // crash points replay, the run reports fully skipped/degraded.
        let doc = run_supervised(
            7,
            2,
            &TortureOpts {
                full: false,
                checkpoint: None,
                resume: false,
                abort_after: Some(0),
            },
        );
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(true));
        let summary = doc.get("summary").expect("summary");
        let total = doc
            .get("plan")
            .and_then(|p| p.get("crash_points"))
            .and_then(Json::as_u64)
            .expect("crash points");
        assert!(total > 0);
        assert_eq!(summary.get("skipped").and_then(Json::as_u64), Some(total));
        for key in ["clean", "loud_degraded", "silent_corruption"] {
            assert_eq!(summary.get(key).and_then(Json::as_u64), Some(0), "{key}");
        }
    }

    #[test]
    fn aborted_campaign_resumes_bit_identical() {
        let mut path = std::env::temp_dir();
        path.push(format!("ssdhammer-torture-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run(7, 2, false).to_string();
        let killed = run_supervised(
            7,
            2,
            &TortureOpts {
                full: false,
                checkpoint: Some(&path),
                resume: false,
                abort_after: Some(5),
            },
        );
        assert_eq!(killed.get("degraded").and_then(Json::as_bool), Some(true));
        let resumed = run_supervised(
            7,
            1,
            &TortureOpts {
                full: false,
                checkpoint: Some(&path),
                resume: true,
                abort_after: None,
            },
        );
        assert_eq!(resumed.to_string(), uninterrupted);
        let _ = std::fs::remove_file(&path);
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro torture` (the binary's `--checkpoint`,
/// `--resume`, and `--abort-after` flags route through the cfg).
#[derive(Debug, Clone, Copy)]
pub struct TortureScenario;

impl TortureScenario {
    fn opts(cfg: &ScenarioCfg) -> TortureOpts<'_> {
        TortureOpts {
            full: cfg.full,
            checkpoint: cfg.checkpoint.as_deref(),
            resume: cfg.resume,
            abort_after: cfg.abort_after,
        }
    }
}

impl Scenario for TortureScenario {
    fn name(&self) -> &'static str {
        "torture"
    }

    fn run(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        run_supervised(seed, threads, &Self::opts(&cfg))
    }

    fn render(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&run_supervised(seed, threads, &Self::opts(&cfg)))
    }
}
