//! `repro` — regenerates every table and figure of *Rowhammering Storage
//! Devices* (HotStorage '21) as text, and optionally dumps the structured
//! results as JSON.
//!
//! Subcommands are declared once in the [`COMMANDS`] registry — a name, a
//! help line, and a runner — and everything else (dispatch, `repro help`,
//! the usage string, the `all` loop) is generated from that table. Most
//! experiments dispatch through their module's [`Scenario`] impl; the few
//! with extra side effects (fig1's telemetry snapshot file, the escalation
//! demo, the `bench` harness) use custom runners.
//!
//! Run `repro help` for the generated command and flag reference.

use ssdhammer_bench::scenario::{Scenario, ScenarioCfg};
use ssdhammer_bench::{
    ablations, attacks, benchmark, defenses, faults, fig1, fig2, fig3, fuzz, sec23, sec43, sec5,
    table1, torture,
};
use ssdhammer_simkit::json::ToJson;

/// Parsed command-line flags, handed to every runner.
struct Ctx {
    seed: u64,
    threads: usize,
    json: bool,
    full: bool,
    quick: bool,
    pattern: Option<String>,
    victim: Option<String>,
    checkpoint: Option<String>,
    resume: bool,
    abort_after: Option<usize>,
    soak: Option<usize>,
    replay: Option<String>,
}

impl Ctx {
    fn cfg(&self) -> ScenarioCfg {
        ScenarioCfg {
            full: self.full,
            checkpoint: self.checkpoint.as_ref().map(std::path::PathBuf::from),
            resume: self.resume,
            abort_after: self.abort_after,
            soak: self.soak,
            replay: self.replay.as_ref().map(std::path::PathBuf::from),
        }
    }
}

/// How a subcommand executes.
enum Runner {
    /// Dispatch through the module's uniform [`Scenario`] entry point.
    Scenario(&'static dyn Scenario),
    /// A bespoke runner for commands with side effects beyond stdout.
    Custom(fn(&Ctx)),
}

/// One row of the subcommand registry.
struct Cmd {
    /// Subcommand name.
    name: &'static str,
    /// One-line help text.
    help: &'static str,
    /// Execution strategy.
    runner: Runner,
    /// Whether `repro all` includes this command.
    in_all: bool,
}

/// The declarative subcommand registry: `help`, the usage line, and
/// dispatch are all generated from this table.
static COMMANDS: &[Cmd] = &[
    Cmd {
        name: "table1",
        help: "Table 1  — minimal access rate to trigger bitflips",
        runner: Runner::Scenario(&table1::Table1Scenario),
        in_all: true,
    },
    Cmd {
        name: "fig1",
        help: "Figure 1 — two-sided FTL rowhammer redirects an LBA",
        runner: Runner::Custom(run_fig1),
        in_all: true,
    },
    Cmd {
        name: "fig2",
        help: "Figure 2 — direct vs helper-VM setups",
        runner: Runner::Scenario(&fig2::Fig2Scenario),
        in_all: true,
    },
    Cmd {
        name: "fig3",
        help: "Figure 3 — end-to-end ext4 indirect-block exploit",
        runner: Runner::Scenario(&fig3::Fig3Scenario),
        in_all: true,
    },
    Cmd {
        name: "prob",
        help: "§4.3     — probability of success",
        runner: Runner::Scenario(&sec43::Sec43Scenario),
        in_all: true,
    },
    Cmd {
        name: "mitigations",
        help: "§5       — mitigation matrix",
        runner: Runner::Scenario(&sec5::Sec5Scenario),
        in_all: true,
    },
    Cmd {
        name: "feasibility",
        help: "§2.3     — NVMe-rate feasibility",
        runner: Runner::Scenario(&sec23::Sec23Scenario),
        in_all: true,
    },
    Cmd {
        name: "ablations",
        help: "design-choice ablations (DESIGN.md §5)",
        runner: Runner::Scenario(&ablations::AblationsScenario),
        in_all: true,
    },
    Cmd {
        name: "escalation",
        help: "§3.2     — privilege escalation via polyglot blocks",
        runner: Runner::Custom(run_escalation),
        in_all: true,
    },
    Cmd {
        name: "faults",
        help: "fault-injection plane vs the FTL recovery stack",
        runner: Runner::Scenario(&faults::FaultsScenario),
        in_all: true,
    },
    Cmd {
        name: "defenses",
        help: "defense-in-depth matrix — attack success per defense layer",
        runner: Runner::Scenario(&defenses::DefensesScenario),
        in_all: true,
    },
    Cmd {
        name: "attacks",
        help: "pattern x victim campaign grid (--pattern/--victim filter)",
        runner: Runner::Custom(run_attacks),
        in_all: true,
    },
    Cmd {
        name: "torture",
        help: "power-cut torture — crash-point enumeration x recovery oracle",
        runner: Runner::Scenario(&torture::TortureScenario),
        in_all: false,
    },
    Cmd {
        name: "fuzz",
        help: "model-based fuzz — random op soak vs the shadow oracle",
        runner: Runner::Scenario(&fuzz::FuzzScenario),
        in_all: false,
    },
    Cmd {
        name: "bench",
        help: "perf baseline — times the hot paths, writes BENCH_9.json",
        runner: Runner::Custom(run_bench),
        in_all: false,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut ctx = Ctx {
        seed: 7,
        threads: 1,
        json: false,
        full: false,
        quick: false,
        pattern: None,
        victim: None,
        checkpoint: None,
        resume: false,
        abort_after: None,
        soak: None,
        replay: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                ctx.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--pattern" => {
                ctx.pattern = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--pattern needs a name")),
                );
            }
            "--victim" => {
                ctx.victim = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--victim needs a name")),
                );
            }
            "--threads" => {
                ctx.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| die("--threads needs a positive number"));
            }
            "--checkpoint" => {
                ctx.checkpoint = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--checkpoint needs a path")),
                );
            }
            "--resume" => ctx.resume = true,
            "--abort-after" => {
                ctx.abort_after = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--abort-after needs a number")),
                );
            }
            "--soak" => {
                ctx.soak = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("--soak needs a positive number")),
                );
            }
            "--replay" => {
                ctx.replay = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--replay needs a directory")),
                );
            }
            "--json" => ctx.json = true,
            "--full" => ctx.full = true,
            "--quick" => ctx.quick = true,
            "--help" | "-h" => {
                print_help();
                return;
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_owned());
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    match experiment.as_deref().unwrap_or("all") {
        "help" => print_help(),
        "all" => {
            for cmd in COMMANDS.iter().filter(|c| c.in_all) {
                run_cmd(cmd, &ctx);
                println!();
            }
        }
        name => match COMMANDS.iter().find(|c| c.name == name) {
            Some(cmd) => run_cmd(cmd, &ctx),
            None => die(&format!("unknown experiment '{name}'")),
        },
    }
}

fn run_cmd(cmd: &Cmd, ctx: &Ctx) {
    match cmd.runner {
        Runner::Scenario(s) => {
            if ctx.json {
                println!(
                    "{}",
                    s.run(ctx.cfg(), ctx.seed, ctx.threads).to_string_pretty()
                );
            } else {
                print!("{}", s.render(ctx.cfg(), ctx.seed, ctx.threads));
            }
        }
        Runner::Custom(f) => f(ctx),
    }
}

/// fig1 with its side effect: the device telemetry snapshot is written
/// next to the figure output.
fn run_fig1(ctx: &Ctx) {
    let (r, snapshot) = fig1::run_with_telemetry(ctx.seed);
    if ctx.json {
        println!("{}", r.to_json().to_string_pretty());
    } else {
        print!("{}", fig1::render(&r));
    }
    let path = "fig1-telemetry.json";
    match std::fs::write(path, snapshot.to_json().to_string_pretty()) {
        Ok(()) => eprintln!("telemetry snapshot written to {path}"),
        Err(e) => eprintln!("repro: could not write {path}: {e}"),
    }
}

/// The pattern × victim campaign grid, with the registry-name filters.
fn run_attacks(ctx: &Ctx) {
    let cells = attacks::run_filtered(
        ctx.seed,
        ctx.threads,
        ctx.pattern.as_deref(),
        ctx.victim.as_deref(),
    )
    .unwrap_or_else(|e| {
        use ssdhammer_core::{pattern_names, victim_names};
        eprintln!("repro: {e}");
        eprintln!("patterns: {}", pattern_names().join(", "));
        eprintln!("victims:  {}", victim_names().join(", "));
        std::process::exit(2);
    });
    if ctx.json {
        println!("{}", cells.to_json().to_string_pretty());
    } else {
        print!("{}", attacks::render(&cells));
    }
}

/// The §3.2 privilege-escalation demo.
fn run_escalation(ctx: &Ctx) {
    use ssdhammer_cloud::{run_escalation, EscalationConfig};
    let outcome = run_escalation(&EscalationConfig::fast_demo(ctx.seed)).expect("escalation run");
    if ctx.json {
        println!("{}", outcome.cycles.to_json().to_string_pretty());
    } else {
        println!(
            "§3.2 privilege escalation: escalated={} tag={:?} simulated_time={}",
            outcome.escalated, outcome.observed_tag, outcome.total_time
        );
        for c in &outcome.cycles {
            println!(
                "  cycle {:>2}: flips={:<4} legitimate={:<4} crashed={:<3} hijacked={}",
                c.cycle, c.flips, c.legitimate, c.crashed, c.escalated
            );
        }
    }
}

/// The perf baseline: times the hot paths, writes `BENCH_9.json`, and
/// self-checks that the document parses.
fn run_bench(ctx: &Ctx) {
    let report = benchmark::run(ctx.seed, ctx.threads, ctx.quick);
    let text = report.doc.to_string_pretty();
    ssdhammer_simkit::json::Json::parse(&text).expect("BENCH document must parse");
    let path = "BENCH_9.json";
    match std::fs::write(path, &text) {
        Ok(()) => eprintln!("bench report written to {path}"),
        Err(e) => eprintln!("repro: could not write {path}: {e}"),
    }
    println!("{text}");
}

fn print_help() {
    println!("repro <experiment> [--seed N] [--threads N] [--json] [--full] [--quick]");
    println!();
    println!("experiments:");
    for c in COMMANDS {
        println!("  {:<13} {}", c.name, c.help);
    }
    println!("  all           every experiment above except bench");
    println!();
    println!("flags:");
    println!("  --seed N      manufacturing-variation seed (default 7)");
    println!("  --threads N   worker threads for campaign experiments; output is");
    println!("                bit-identical for any N (default 1)");
    println!("  --json        print structured JSON instead of tables");
    println!("  --full        fig3: run the paper-prototype-scale configuration");
    println!("                (1 GiB SSD, 5% spray cap, 5-minute hammer bursts);");
    println!("                torture: larger workload with a sampled crash schedule");
    println!("  --quick       bench only: fast-demo scenarios for CI smoke runs");
    println!("  --pattern P   attacks only: run a single hammer pattern's cells");
    println!("  --victim V    attacks only: run a single victim structure's cells");
    println!("  --checkpoint F  torture/fuzz: persist completed shards to F after each one");
    println!("  --resume      torture/fuzz: restore completed shards from --checkpoint first");
    println!("  --abort-after N  torture/fuzz: stop launching shards after N (kill simulation)");
    println!("  --soak N      fuzz only: run N episodes (default 24, or 64 with --full)");
    println!("  --replay DIR  fuzz only: replay persisted corpus cases instead of soaking");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    let names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
    eprintln!(
        "usage: repro [{}|all] [--seed N] [--threads N] [--json] [--full] [--quick]",
        names.join("|")
    );
    std::process::exit(2);
}
