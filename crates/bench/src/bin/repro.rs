//! `repro` — regenerates every table and figure of *Rowhammering Storage
//! Devices* (HotStorage '21) as text, and optionally dumps the structured
//! results as JSON.
//!
//! ```text
//! repro <experiment> [--seed N] [--threads N] [--json] [--full]
//!
//! experiments:
//!   table1        Table 1  — minimal access rate to trigger bitflips
//!   fig1          Figure 1 — two-sided FTL rowhammer redirects an LBA
//!   fig2          Figure 2 — direct vs helper-VM setups
//!   fig3          Figure 3 — end-to-end ext4 indirect-block exploit
//!   prob          §4.3     — probability of success
//!   mitigations   §5       — mitigation matrix
//!   feasibility   §2.3     — NVMe-rate feasibility
//!   ablations     design-choice ablations (DESIGN.md §5)
//!   escalation    §3.2     — privilege escalation via polyglot blocks
//!   faults        fault-injection plane vs the FTL recovery stack
//!   defenses      defense-in-depth matrix — attack success probability per
//!                 defense layer (TRR, PARA, L2P integrity, scrubber)
//!   all           everything above
//!
//! flags:
//!   --seed N      manufacturing-variation seed (default 7)
//!   --threads N   worker threads for campaign experiments (table1, prob,
//!                 ablations, faults, defenses); output is bit-identical for any N
//!                 (default 1)
//!   --json        print structured JSON instead of tables
//!   --full        fig3 only: run the paper-prototype-scale configuration
//!                 (1 GiB SSD, 5% spray cap, 5-minute hammer bursts) instead
//!                 of the fast demo
//! ```

use ssdhammer_bench::{ablations, defenses, faults, fig1, fig2, fig3, sec23, sec43, sec5, table1};
use ssdhammer_simkit::json::{Json, ToJson};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut seed = 7u64;
    let mut threads = 1usize;
    let mut json = false;
    let mut full = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| die("--threads needs a positive number"));
            }
            "--json" => json = true,
            "--full" => full = true,
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_owned());
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let experiment = experiment.unwrap_or_else(|| "all".to_owned());
    let run_one = |name: &str| run_experiment(name, seed, threads, json, full);
    match experiment.as_str() {
        "all" => {
            for name in [
                "table1",
                "fig1",
                "fig2",
                "fig3",
                "prob",
                "mitigations",
                "feasibility",
                "ablations",
                "escalation",
                "faults",
                "defenses",
            ] {
                run_one(name);
                println!();
            }
        }
        name => run_one(name),
    }
}

fn run_experiment(name: &str, seed: u64, threads: usize, json: bool, full: bool) {
    match name {
        "table1" => {
            let rows = table1::run_with_threads(seed, threads);
            if json {
                println!("{}", rows.to_json().to_string_pretty());
            } else {
                print!("{}", table1::render(&rows));
            }
        }
        "fig1" => {
            let (r, snapshot) = fig1::run_with_telemetry(seed);
            if json {
                println!("{}", r.to_json().to_string_pretty());
            } else {
                print!("{}", fig1::render(&r));
            }
            let path = "fig1-telemetry.json";
            match std::fs::write(path, snapshot.to_json().to_string_pretty()) {
                Ok(()) => eprintln!("telemetry snapshot written to {path}"),
                Err(e) => eprintln!("repro: could not write {path}: {e}"),
            }
        }
        "fig2" => {
            let rows = fig2::run(seed);
            if json {
                println!("{}", rows.to_json().to_string_pretty());
            } else {
                print!("{}", fig2::render(&rows));
            }
        }
        "fig3" => {
            if full {
                run_fig3_full(seed, json);
            } else {
                let r = fig3::run(seed);
                if json {
                    println!("{}", r.to_json().to_string_pretty());
                } else {
                    print!("{}", fig3::render(&r));
                    let ablation = fig3::spray_ablation(seed);
                    print!("{}", fig3::render_ablation(&ablation));
                }
            }
        }
        "prob" => {
            let r = sec43::run_with_threads(seed, threads);
            if json {
                println!("{}", r.to_json().to_string_pretty());
            } else {
                print!("{}", sec43::render(&r));
            }
        }
        "mitigations" => {
            let rows = sec5::run(seed);
            let leak_rows = sec5::run_leak_matrix(seed);
            if json {
                println!("{}", rows.to_json().to_string_pretty());
                println!("{}", leak_rows.to_json().to_string_pretty());
            } else {
                print!("{}", sec5::render(&rows));
                print!("{}", sec5::render_leak_matrix(&leak_rows));
            }
        }
        "feasibility" => {
            let rows = sec23::run(seed);
            if json {
                println!("{}", rows.to_json().to_string_pretty());
            } else {
                print!("{}", sec23::render(&rows));
            }
        }
        "ablations" => {
            print!("{}", ablations::render_with_threads(seed, threads));
        }
        "faults" => {
            let rows = faults::run_with_threads(seed, threads);
            if json {
                println!("{}", rows.to_json().to_string_pretty());
            } else {
                print!("{}", faults::render(&rows));
            }
        }
        "defenses" => {
            let rows = defenses::run_with_threads(seed, threads);
            if json {
                println!("{}", rows.to_json().to_string_pretty());
            } else {
                print!("{}", defenses::render(&rows));
            }
        }
        "escalation" => {
            use ssdhammer_cloud::{run_escalation, EscalationConfig};
            let outcome =
                run_escalation(&EscalationConfig::fast_demo(seed)).expect("escalation run");
            if json {
                println!("{}", outcome.cycles.to_json().to_string_pretty());
            } else {
                println!(
                    "§3.2 privilege escalation: escalated={} tag={:?} simulated_time={}",
                    outcome.escalated, outcome.observed_tag, outcome.total_time
                );
                for c in &outcome.cycles {
                    println!(
                        "  cycle {:>2}: flips={:<4} legitimate={:<4} crashed={:<3} hijacked={}",
                        c.cycle, c.flips, c.legitimate, c.crashed, c.escalated
                    );
                }
            }
        }
        other => die(&format!("unknown experiment '{other}'")),
    }
}

/// The paper-prototype-scale end-to-end run (§4.1's 1 GiB SSD).
fn run_fig3_full(seed: u64, json: bool) {
    use ssdhammer_cloud::{run_case_study, CaseStudyConfig};
    eprintln!("running the paper-prototype configuration; this simulates hours of attack time...");
    let config = CaseStudyConfig::paper_prototype(seed);
    let outcome = run_case_study(&config).expect("case study");
    if json {
        let doc = Json::obj([
            ("success", Json::from(outcome.success)),
            ("cycles", outcome.cycles.to_json()),
            (
                "total_time_secs",
                Json::from(outcome.total_time.as_secs_f64()),
            ),
            ("corruption_events", Json::from(outcome.corruption_events)),
        ]);
        println!("{}", doc.to_string_pretty());
    } else {
        println!(
            "paper-prototype case study: success={} cycles={} corruption_events={} simulated_time={}",
            outcome.success,
            outcome.cycles.len(),
            outcome.corruption_events,
            outcome.total_time,
        );
        println!("(paper §4.2: \"on our testbed this took about two hours\")");
        for c in &outcome.cycles {
            println!(
                "  cycle {:>2}: files={} sites={} flips={} hits={} leaked={}",
                c.cycle, c.sprayed_files, c.sites_hammered, c.flips, c.scan_hits, c.leaked_secret
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("usage: repro [table1|fig1|fig2|fig3|prob|mitigations|feasibility|ablations|escalation|faults|defenses|all] [--seed N] [--threads N] [--json] [--full]");
    std::process::exit(2);
}
