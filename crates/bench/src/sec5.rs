//! Experiment E6 — **§5**: mitigations. Each defense is enabled alone and
//! the Figure 1 primitive re-run; the table reports physical flips vs
//! host-visible redirections, plus the TRRespass caveat (many-sided beats
//! the TRR sampler) and the one-location/open-page interaction.

use ssdhammer_core::{
    diff_mappings, find_attack_sites, setup_entries, snapshot_host_mappings, AttackError,
    AttackPipeline, CrossBank, Hammerer, L2pEntries, ManySided, OneLocation, SameBank, TwoSided,
};
use ssdhammer_dram::{
    DramGeneration, DramGeometry, EccConfig, MappingKind, ModuleProfile, TrrConfig,
};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_ftl::L2pLayout;
use ssdhammer_nvme::{Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::{Lba, SimDuration};

/// One mitigation sweep point.
#[derive(Debug, Clone)]
pub struct Sec5Row {
    /// Configuration label.
    pub config: String,
    /// Physical bitflips induced.
    pub flips: u64,
    /// Host-visible L2P redirections.
    pub redirections: usize,
    /// Whether the defense stopped the attack (no usable redirections).
    pub blocked: bool,
}

impl ToJson for Sec5Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::str(&*self.config)),
            ("flips", Json::from(self.flips)),
            ("redirections", Json::from(self.redirections)),
            ("blocked", Json::from(self.blocked)),
        ])
    }
}

fn demo_profile() -> ModuleProfile {
    let mut p = ModuleProfile::from_min_rate("demo DDR4", DramGeneration::Ddr4, 2020, 100);
    p.row_vulnerable_prob = 1.0;
    p.weak_cells_per_row = 8.0;
    p
}

fn base_config(seed: u64) -> SsdConfig {
    let mut c = SsdConfig::test_small(seed);
    c.dram_geometry = DramGeometry::tiny_test();
    c.dram_profile = demo_profile();
    c.dram_mapping = MappingKind::Linear;
    c.flash_geometry = FlashGeometry::mib64();
    c
}

fn attack(config: SsdConfig, hammerer: impl Hammerer + 'static) -> (u64, usize) {
    let mut ssd = Ssd::build(config);
    let Some(site) = find_attack_sites(ssd.ftl(), 4).first().cloned() else {
        return (0, 0);
    };
    let outcome = AttackPipeline::new(hammerer, L2pEntries::default(), CrossBank)
        .with_rate(1_000_000.0)
        .with_duration(SimDuration::from_millis(500))
        .with_sites(vec![site])
        .run(&mut ssd)
        .expect("hammer");
    (
        outcome.report.flips.len() as u64,
        outcome.redirections().len(),
    )
}

fn attack_many_sided(config: SsdConfig) -> (u64, usize) {
    let mut ssd = Ssd::build(config);
    let pipeline = AttackPipeline::new(ManySided::default(), L2pEntries::default(), SameBank)
        .with_rate(2_000_000.0)
        .with_duration(SimDuration::from_millis(500))
        .with_max_sites(6);
    match pipeline.run(&mut ssd) {
        Ok(outcome) => (
            outcome.report.flips.len() as u64,
            outcome.redirections().len(),
        ),
        Err(AttackError::NoSites | AttackError::NotEnoughSites { .. }) => (0, 0),
        Err(e) => panic!("hammer: {e}"),
    }
}

/// Attack against a keyed-hash L2P with the attacker's recon blinded to the
/// key: it assumes a linear layout and hammers/checks the wrong LBAs.
fn attack_blind(config: SsdConfig) -> (u64, usize) {
    let mut ssd = Ssd::build(config);
    let guessed_victim: Vec<Lba> = (512..768).map(Lba).collect();
    let guessed_aggressors = [Lba(256), Lba(768)];
    setup_entries(ssd.ftl_mut(), &guessed_victim).expect("setup");
    let before = snapshot_host_mappings(ssd.ftl_mut(), &guessed_victim).expect("snapshot");
    let report = ssd
        .hammer_device_reads(&guessed_aggressors, 500_000, 1_000_000.0)
        .expect("hammer");
    let after = snapshot_host_mappings(ssd.ftl_mut(), &guessed_victim).expect("snapshot");
    (
        report.flips.len() as u64,
        diff_mappings(&guessed_victim, &before, &after).len(),
    )
}

/// Runs the full mitigation matrix.
#[must_use]
pub fn run(seed: u64) -> Vec<Sec5Row> {
    let mut rows = Vec::new();
    let mut push = |config: &str, (flips, redirections): (u64, usize)| {
        rows.push(Sec5Row {
            config: config.to_owned(),
            flips,
            redirections,
            blocked: redirections == 0,
        });
    };

    push(
        "baseline (no mitigation)",
        attack(base_config(seed), TwoSided),
    );

    let mut ecc = base_config(seed);
    ecc.ecc = Some(EccConfig::default());
    push("SEC-DED ECC", attack(ecc, TwoSided));

    let mut trr = base_config(seed);
    trr.trr = Some(TrrConfig::default());
    push("TRR vs double-sided", attack(trr.clone(), TwoSided));
    push("TRR vs many-sided (6 pairs)", attack_many_sided(trr));

    let mut refresh = base_config(seed);
    refresh.dram_profile = demo_profile().with_refresh_multiplier(16);
    push("16x refresh rate", attack(refresh, TwoSided));

    let mut limited = base_config(seed);
    limited.controller.rate_limit_iops = Some(50_000.0);
    push("IOPS rate limit (50K/s)", attack(limited, TwoSided));

    let mut hashed = base_config(seed);
    hashed.ftl.l2p_layout = L2pLayout::Hashed { key: 0x5EC6_E7B1 };
    push("keyed-hash L2P (blinded recon)", attack_blind(hashed));

    push(
        "one-location on open-page ctrl",
        attack(base_config(seed), OneLocation),
    );
    rows
}

/// One row of the end-to-end leak-level mitigation matrix: these defenses
/// do not stop bitflips or even redirections — they stop the *leak*.
#[derive(Debug, Clone)]
pub struct LeakRow {
    /// Configuration label.
    pub config: String,
    /// Cycles the attack ran.
    pub cycles: u32,
    /// Total flips induced.
    pub flips: u64,
    /// Scan detections (content changes seen by the attacker).
    pub scan_hits: usize,
    /// Whether the secret actually leaked.
    pub leaked: bool,
}

impl ToJson for LeakRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::str(&*self.config)),
            ("cycles", Json::from(self.cycles)),
            ("flips", Json::from(self.flips)),
            ("scan_hits", Json::from(self.scan_hits)),
            ("leaked", Json::from(self.leaked)),
        ])
    }
}

/// Runs the end-to-end case study under §5's data-protection mitigations:
/// T10-DIF block integrity, per-tenant (XTS-like) encryption, and the
/// extents-only filesystem policy.
#[must_use]
pub fn run_leak_matrix(seed: u64) -> Vec<LeakRow> {
    use ssdhammer_cloud::{run_case_study, CaseStudyConfig};
    let base = || {
        let mut c = CaseStudyConfig::fast_demo(seed);
        c.max_cycles = 4;
        c
    };
    let run = |label: &str, config: CaseStudyConfig| {
        let outcome = run_case_study(&config).expect("case study");
        LeakRow {
            config: label.to_owned(),
            cycles: outcome.cycles.len() as u32,
            flips: outcome.cycles.iter().map(|c| c.flips).sum(),
            scan_hits: outcome.cycles.iter().map(|c| c.scan_hits).sum(),
            leaked: outcome.success,
        }
    };
    let mut rows = vec![run("baseline (no data protection)", base())];
    let mut dif = base();
    dif.ssd.ftl.dif = true;
    rows.push(run("T10-DIF block integrity", dif));
    let mut enc = base();
    enc.victim_encryption_key = Some(0x7E4A_11CE);
    rows.push(run("per-tenant encryption (XTS-like)", enc));
    let mut ext = base();
    ext.victim_extents_only = true;
    rows.push(run("extents-only filesystem policy", ext));
    rows
}

/// Renders the leak-level matrix.
#[must_use]
pub fn render_leak_matrix(rows: &[LeakRow]) -> String {
    let mut out = String::from(
        "\n§5 (continued): data-protection mitigations vs the end-to-end leak\n\
         configuration                        cycles  flips  detections  secret leaked\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<36} {:>6} {:>6} {:>11} {:>14}\n",
            r.config,
            r.cycles,
            r.flips,
            r.scan_hits,
            if r.leaked { "LEAKED" } else { "no" }
        ));
    }
    out
}

/// Renders the matrix.
#[must_use]
pub fn render(rows: &[Sec5Row]) -> String {
    let mut out = String::from(
        "§5: mitigations vs the Figure 1 primitive\n\
         configuration                        flips  redirections  attack blocked\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<36} {:>5} {:>13} {:>15}\n",
            r.config,
            r.flips,
            r.redirections,
            if r.blocked { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigation_matrix_has_expected_shape() {
        let rows = run(42);
        let get = |name: &str| rows.iter().find(|r| r.config.starts_with(name)).unwrap();
        // Attack works without defenses.
        assert!(!get("baseline").blocked);
        assert!(get("baseline").flips > 0);
        // ECC corrects: physical flips persist, host sees none.
        let ecc = get("SEC-DED ECC");
        assert!(ecc.flips > 0 && ecc.blocked);
        // TRR stops double-sided but not many-sided (TRRespass).
        assert!(get("TRR vs double-sided").blocked);
        assert!(!get("TRR vs many-sided").blocked);
        // Faster refresh and rate limiting both block (no flips at all).
        assert_eq!(get("16x refresh").flips, 0);
        assert_eq!(get("IOPS rate limit").flips, 0);
        // Hashed L2P: flips may occur but the blinded attacker observes no
        // redirection on its guessed victims.
        assert!(get("keyed-hash").blocked);
        // One-location achieves nothing on an open-page controller.
        assert_eq!(get("one-location").flips, 0);
    }

    #[test]
    fn leak_matrix_blocks_everything_but_the_baseline() {
        // Seed chosen so the unprotected baseline converges within the
        // matrix's four-cycle budget.
        let rows = run_leak_matrix(1);
        let get = |name: &str| rows.iter().find(|r| r.config.starts_with(name)).unwrap();
        assert!(get("baseline").leaked, "{rows:?}");
        assert!(!get("T10-DIF").leaked);
        assert!(!get("per-tenant").leaked);
        assert!(!get("extents-only").leaked);
        // DIF/encryption leave the flips; extents-only prevents the spray
        // stage entirely.
        assert!(get("T10-DIF").flips > 0);
        assert_eq!(get("extents-only").cycles, 0);
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro mitigations`. The structured document
/// carries both the mitigation matrix and the §5 leak matrix under one
/// object, where the legacy path printed two separate documents.
#[derive(Debug, Clone, Copy)]
pub struct Sec5Scenario;

impl Scenario for Sec5Scenario {
    fn name(&self) -> &'static str {
        "mitigations"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> Json {
        Json::obj([
            ("mitigations", run(seed).to_json()),
            ("leak_matrix", run_leak_matrix(seed).to_json()),
        ])
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> String {
        let mut out = render(&run(seed));
        out.push_str(&render_leak_matrix(&run_leak_matrix(seed)));
        out
    }
}
