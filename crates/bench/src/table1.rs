//! Experiment E1 — **Table 1**: "Reported minimal access rate to trigger
//! bitflips."
//!
//! For every module profile in the table, a fresh simulated module is built
//! and the minimal double-sided access rate that produces a flip is
//! *measured* through the full simulator (refresh windows, row-buffer
//! policy, address mapping) by binary search. The measured column should
//! match the paper's reported rate in ordering and rough magnitude.

use ssdhammer_dram::{
    hammer::measure_min_flip_rate, DramGeometry, DramModule, MappingKind, ModuleProfile,
};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::parallel::Campaign;
use ssdhammer_simkit::SimClock;

/// One reproduced row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Publication year.
    pub year: u16,
    /// Citation tag as printed in the paper.
    pub refs: String,
    /// Module label.
    pub module: String,
    /// The paper's reported minimal rate, K accesses/s.
    pub paper_kaps: u32,
    /// Our measured minimal rate, K accesses/s (`None` if no flip below the
    /// search ceiling).
    pub measured_kaps: Option<f64>,
}

impl ToJson for Table1Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("year", Json::from(self.year)),
            ("refs", Json::str(&*self.refs)),
            ("module", Json::str(&*self.module)),
            ("paper_kaps", Json::from(self.paper_kaps)),
            ("measured_kaps", self.measured_kaps.to_json()),
        ])
    }
}

/// Runs the full Table 1 reproduction, single-threaded.
#[must_use]
pub fn run(seed: u64) -> Vec<Table1Row> {
    run_with_threads(seed, 1)
}

/// Like [`run`], measuring the 14 independent module rows across `threads`
/// worker threads via `simkit::parallel`. Each row builds its own module
/// and clock from the same `seed` the sequential path uses, and the runner
/// merges rows in table order — the output is bit-identical for any thread
/// count.
#[must_use]
pub fn run_with_threads(seed: u64, threads: usize) -> Vec<Table1Row> {
    let profiles = ModuleProfile::table1();
    Campaign::new(seed)
        .with_tag("table1")
        .with_threads(threads)
        .run(profiles.len(), |trial| {
            let (year, refs, profile) = &profiles[trial.index];
            let paper_kaps = profile.min_flip_rate_kaps;
            let factory = move || {
                DramModule::builder(DramGeometry::tiny_test())
                    .profile(profile.clone())
                    .mapping(MappingKind::Linear)
                    .seed(seed)
                    .without_timing()
                    .build(SimClock::new())
            };
            let measured = measure_min_flip_rate(&factory, 50_000.0, 20_000_000.0, 1, 0.02);
            Table1Row {
                year: *year,
                refs: (*refs).to_owned(),
                module: profile.name.clone(),
                paper_kaps,
                measured_kaps: measured.map(|m| m.min_rate / 1000.0),
            }
        })
}

/// Formats the reproduced table like the paper's.
#[must_use]
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table 1: minimal access rate to trigger bitflips (paper vs measured)\n\
         year  refs       module                        paper(K/s)  measured(K/s)  ratio\n",
    );
    for r in rows {
        let (measured, ratio) = match r.measured_kaps {
            Some(m) => (
                format!("{m:.0}"),
                format!("{:.2}", m / f64::from(r.paper_kaps)),
            ),
            None => ("no flip".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<5} {:<10} {:<29} {:>10} {:>14} {:>6}\n",
            r.year, r.refs, r.module, r.paper_kaps, measured, ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_measure_and_track_calibration() {
        let rows = run(3);
        assert_eq!(rows.len(), 14);
        for r in &rows {
            let m = r
                .measured_kaps
                .unwrap_or_else(|| panic!("{} did not flip", r.module));
            let ratio = m / f64::from(r.paper_kaps);
            assert!(
                (0.85..1.7).contains(&ratio),
                "{}: measured {m:.0} K/s vs paper {} K/s",
                r.module,
                r.paper_kaps
            );
        }
    }

    #[test]
    fn ordering_is_preserved() {
        // The most vulnerable module (LPDDR4 new, 150 K/s) must measure
        // lower than the least vulnerable (DDR3 2018, 9400 K/s).
        let rows = run(3);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.module.contains(name))
                .and_then(|r| r.measured_kaps)
                .unwrap()
        };
        assert!(get("LPDDR4 (new)") < get("DDR4 (old)"));
        assert!(get("DDR4 (old)") < get("DDR3 (2018)"));
    }

    #[test]
    fn render_contains_all_modules() {
        let rows = run(3);
        let text = render(&rows);
        for r in &rows {
            assert!(text.contains(&r.module));
        }
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro table1`.
#[derive(Debug, Clone, Copy)]
pub struct Table1Scenario;

impl Scenario for Table1Scenario {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        run_with_threads(seed, threads).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&run_with_threads(seed, threads))
    }
}
