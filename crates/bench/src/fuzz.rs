//! Model-based fuzz campaign (`repro fuzz`): seeded random interleavings
//! of host block ops, scrubber pumps, registry-driven hammer bursts, and
//! armed crash-point cuts, executed against the real [`Ssd`]/FTL stack and
//! differentially checked — every observable result — against the
//! [`ShadowDisk`] oracle shared with the torture campaign.
//!
//! The oracle extends PR 9's write/trim/flush shadow to the full contract:
//! reads must return content the operation history allows, a device that
//! loudly degraded to read-only must never acknowledge another mutation,
//! typed errors must be *legal* for the operation that surfaced them
//! ([`error_is_legal`]), a hammer burst on the invulnerable test module
//! must never flip a bit, and every power cut — armed mid-operation via
//! [`FuzzOp::ArmCut`] or clean via [`FuzzOp::PowerCycle`] — must remount
//! into a state the shadow accepts.
//!
//! On divergence the engine ([`ssdhammer_simkit::fuzz`]) auto-shrinks the
//! sequence to a minimal repro (ddmin over ops, then per-op parameters),
//! buckets failures by signature, and the campaign document carries the
//! minimized cases in the same JSON shape as the committed `corpus/`
//! directory, which `repro fuzz --replay corpus/` re-executes as
//! regression tests.
//!
//! The device under fuzz is deliberately *invulnerable* (no weak DRAM
//! cells) and fault-free except for the one armed cut: any divergence is a
//! stack bug, not an injected upset. Victim [`configure`] hooks are not
//! applied for the same reason — the hammer op drives the registry's
//! pattern planning and the real `hammer_reads` path, against a module
//! where the correct observable outcome is "no flips".
//!
//! [`configure`]: ssdhammer_core::attack::Victim::configure

use std::path::Path;

use ssdhammer_core::attack::{combos, enumerate_sites, make_hammerer, make_victim};
use ssdhammer_dram::HammerOptions;
use ssdhammer_flash::FlashGeometry;
use ssdhammer_ftl::{error_is_legal, FtlConfig, FtlError, HostOp, ReadOutcome};
use ssdhammer_nvme::{Ssd, SsdConfig};
use ssdhammer_simkit::faultplane::{FaultPlaneConfig, FaultSpec};
use ssdhammer_simkit::fuzz::{run_episode, Failure, FuzzCase, FuzzTarget, ShadowDisk, Verdict};
use ssdhammer_simkit::json::Json;
use ssdhammer_simkit::rng::{Rng, SimRng};
use ssdhammer_simkit::supervisor::{JsonCodec, SupervisedReport, Supervisor};
use ssdhammer_simkit::telemetry::Telemetry;
use ssdhammer_simkit::{Lba, SimDuration, BLOCK_SIZE};

use crate::torture::torture_sites;

/// Structured-result schema identifier.
pub const SCHEMA: &str = "ssdhammer-fuzz-v1";

/// Schema identifier of one persisted corpus case.
pub const CASE_SCHEMA: &str = "ssdhammer-fuzz-case-v1";

/// LBA span the generator (and the oracle readback) covers.
const SPAN: u64 = 12;

/// Fixed device seed: the op sequence carries all per-episode variation,
/// so a minimized case replays from its ops alone.
const DEVICE_SEED: u64 = 0xF022;

/// Requests per hammer burst (kept small: the burst's oracle value is
/// "no flips and a lawful result", not flip statistics).
const HAMMER_REQUESTS: u64 = 16;

/// Host request rate hammer bursts are issued at.
const HAMMER_RATE: f64 = 1.0e6;

// ---- op space ---------------------------------------------------------------

/// One generated operation. Everything is data — the sequence alone
/// determines the episode, so cases serialize losslessly to JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// Read the LBA and check the payload against the shadow.
    Read(u64),
    /// Write `[fill; BLOCK_SIZE]` to the LBA.
    Write(u64, u8),
    /// TRIM the LBA.
    Trim(u64),
    /// Explicit journal flush.
    Flush,
    /// One background scrub chunk (8 L2P entries, 4 patrol reads).
    Scrub,
    /// One registry-driven hammer burst: index into [`combos`] selects the
    /// `pattern × victim` pair whose planning and `hammer_reads` path run.
    Hammer(u8),
    /// Clean power cut between operations: remount via [`Ssd::power_cycle`].
    PowerCycle,
    /// Arm a power cut at crossing `.1` of crash site `.0` (index into
    /// [`torture_sites`]). Execution is a no-op — the *first* `ArmCut` in
    /// the sequence is baked into the device's fault plane at build, so
    /// deleting the op during shrinking removes the cut.
    ArmCut(u8, u8),
}

/// Draws one op from the episode stream, write-heavy so state builds up.
fn gen_op(rng: &mut SimRng) -> FuzzOp {
    let dice = rng.gen_range(0u64..100);
    let lba = |rng: &mut SimRng| rng.gen_range(0u64..SPAN);
    match dice {
        0..=34 => {
            let l = lba(rng);
            FuzzOp::Write(l, rng.gen_range(1u64..256) as u8)
        }
        35..=54 => FuzzOp::Read(lba(rng)),
        55..=64 => FuzzOp::Trim(lba(rng)),
        65..=72 => FuzzOp::Flush,
        73..=80 => FuzzOp::Scrub,
        81..=86 => FuzzOp::Hammer(rng.gen_range(0u64..combos().len() as u64) as u8),
        87..=92 => FuzzOp::PowerCycle,
        _ => FuzzOp::ArmCut(
            rng.gen_range(0u64..torture_sites().len() as u64) as u8,
            rng.gen_range(0u64..8) as u8,
        ),
    }
}

/// Candidate single-op simplifications, simplest first.
fn shrink_op(op: &FuzzOp) -> Vec<FuzzOp> {
    match *op {
        FuzzOp::Read(l) if l > 0 => vec![FuzzOp::Read(0)],
        FuzzOp::Write(l, f) => {
            let mut c = Vec::new();
            if l > 0 {
                c.push(FuzzOp::Write(0, f));
            }
            if f > 1 {
                c.push(FuzzOp::Write(l, 1));
            }
            c
        }
        FuzzOp::Trim(l) if l > 0 => vec![FuzzOp::Trim(0)],
        FuzzOp::Hammer(i) if i > 0 => vec![FuzzOp::Hammer(0)],
        // The site stays put (the failure is usually site-specific); the
        // crossing index first tries the jump to the first crossing, then
        // a single decrement — the decrement lets the crossing walk down
        // in lockstep with ddmin deleting the ops that produced the
        // crossings, which the jump alone cannot do.
        FuzzOp::ArmCut(site, crossing) if crossing > 0 => {
            vec![FuzzOp::ArmCut(site, 0), FuzzOp::ArmCut(site, crossing - 1)]
        }
        _ => Vec::new(),
    }
}

fn encode_op(op: &FuzzOp) -> Json {
    match *op {
        FuzzOp::Read(l) => Json::obj([("op", Json::str("read")), ("lba", Json::from(l))]),
        FuzzOp::Write(l, f) => Json::obj([
            ("op", Json::str("write")),
            ("lba", Json::from(l)),
            ("fill", Json::from(u64::from(f))),
        ]),
        FuzzOp::Trim(l) => Json::obj([("op", Json::str("trim")), ("lba", Json::from(l))]),
        FuzzOp::Flush => Json::obj([("op", Json::str("flush"))]),
        FuzzOp::Scrub => Json::obj([("op", Json::str("scrub"))]),
        FuzzOp::Hammer(i) => Json::obj([
            ("op", Json::str("hammer")),
            ("combo", Json::from(u64::from(i))),
        ]),
        FuzzOp::PowerCycle => Json::obj([("op", Json::str("power_cycle"))]),
        FuzzOp::ArmCut(site, crossing) => Json::obj([
            ("op", Json::str("arm_cut")),
            ("site", Json::from(u64::from(site))),
            ("crossing", Json::from(u64::from(crossing))),
        ]),
    }
}

fn decode_op(j: &Json) -> Option<FuzzOp> {
    let field = |k: &str| j.get(k).and_then(Json::as_u64);
    Some(match j.get("op").and_then(Json::as_str)? {
        "read" => FuzzOp::Read(field("lba")?),
        "write" => FuzzOp::Write(field("lba")?, u8::try_from(field("fill")?).ok()?),
        "trim" => FuzzOp::Trim(field("lba")?),
        "flush" => FuzzOp::Flush,
        "scrub" => FuzzOp::Scrub,
        "hammer" => FuzzOp::Hammer(u8::try_from(field("combo")?).ok()?),
        "power_cycle" => FuzzOp::PowerCycle,
        "arm_cut" => FuzzOp::ArmCut(
            u8::try_from(field("site")?).ok()?,
            u8::try_from(field("crossing")?).ok()?,
        ),
        _ => return None,
    })
}

// ---- target -----------------------------------------------------------------

/// The fuzz target: the real SSD stack behind a differential oracle.
#[derive(Debug, Clone, Copy)]
pub struct SsdFuzz {
    /// Journal-replay CRC verification ([`FtlConfig::journal_verify_crc`]).
    /// `false` plants the torn-tail-replay bug so tests can prove the
    /// oracle catches it; every campaign entry point runs with `true`.
    pub verify_crc: bool,
}

impl Default for SsdFuzz {
    fn default() -> Self {
        SsdFuzz { verify_crc: true }
    }
}

impl SsdFuzz {
    /// The device-under-fuzz configuration for a given op sequence: tiny
    /// geometry, journal every mutation, resident metadata (torture's
    /// recovery-critical shape), and at most one armed crash point — the
    /// sequence's first [`FuzzOp::ArmCut`].
    fn config(&self, ops: &[FuzzOp]) -> SsdConfig {
        let sites = torture_sites();
        let mut faults = FaultPlaneConfig::new();
        if let Some(FuzzOp::ArmCut(site, crossing)) =
            ops.iter().find(|op| matches!(op, FuzzOp::ArmCut(..)))
        {
            let k = u64::from(*crossing);
            faults = faults.with_site(
                sites[usize::from(*site) % sites.len()],
                FaultSpec::always().with_window(k, k + 1).with_max_fires(1),
            );
        }
        SsdConfig::test_small(DEVICE_SEED)
            .with_flash_geometry(FlashGeometry::tiny_test())
            .with_ftl(
                FtlConfig::default()
                    .with_journal_checkpoint_every(1)
                    .with_journal_blocks(2)
                    .with_meta_resident(true)
                    .with_journal_verify_crc(self.verify_crc),
            )
            .with_fault_plane(faults)
    }
}

/// Executor state threaded through one sequence.
struct Exec {
    ssd: Ssd,
    config: SsdConfig,
    shadow: ShadowDisk,
    /// Whether the sequence armed a cut (PowerLoss legality).
    cut_armed: bool,
}

impl Exec {
    /// Remounts after a power cut and oracle-checks the recovered state:
    /// the full span must read back content the shadow allows.
    fn remount(&mut self, ssd: Ssd) -> Result<(), Failure> {
        match ssd.power_cycle(&self.config) {
            Ok(s) => {
                self.ssd = s;
                if self.ssd.ftl().is_read_only() {
                    self.shadow.mark_read_only();
                }
                self.readback("recover")
            }
            // Recovery failing loudly is lawful degradation; the episode
            // simply ends with nothing left to check.
            Err(_) => Err(Failure {
                signature: "episode.over".to_string(),
                detail: String::new(),
            }),
        }
    }

    /// Full-span differential readback. `stage` prefixes the signature so
    /// a post-recovery divergence buckets apart from a steady-state one.
    fn readback(&mut self, stage: &str) -> Result<(), Failure> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        for lba in 0..self.shadow.span() {
            match self.ssd.ftl_mut().read(Lba(lba), &mut buf) {
                Ok(ReadOutcome::Wild { entry }) => {
                    return Err(Failure {
                        signature: format!("{stage}.wild_entry"),
                        detail: format!("lba {lba}: wild L2P entry {entry:#x}"),
                    });
                }
                Ok(ReadOutcome::GuardMismatch { ppn }) => {
                    return Err(Failure {
                        signature: format!("{stage}.guard_mismatch"),
                        detail: format!("lba {lba}: guard mismatch at {ppn}"),
                    });
                }
                Ok(_) => {
                    if !self.shadow.acceptable(lba, &buf) {
                        return Err(Failure {
                            signature: format!("{stage}.divergence"),
                            detail: format!(
                                "lba {lba}: read fill {:#04x}, shadow allows {}",
                                buf[0],
                                self.shadow.describe(lba)
                            ),
                        });
                    }
                }
                Err(e) => {
                    if !error_is_legal(HostOp::Read, &e, self.cut_armed) {
                        return Err(Failure {
                            signature: format!("{stage}.illegal_error.{}", e.signature()),
                            detail: format!("lba {lba}: illegal read error: {e}"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl FuzzTarget for SsdFuzz {
    type Op = FuzzOp;

    fn gen_op(&self, rng: &mut SimRng) -> FuzzOp {
        gen_op(rng)
    }

    fn shrink_op(&self, op: &FuzzOp) -> Vec<FuzzOp> {
        shrink_op(op)
    }

    fn execute(&self, ops: &[FuzzOp]) -> Verdict {
        match self.execute_inner(ops) {
            Ok(()) => Verdict::Pass,
            // "episode.over" is the lawful-early-end sentinel, not a bug.
            Err(f) if f.signature == "episode.over" => Verdict::Pass,
            Err(f) => Verdict::Fail(f),
        }
    }
}

impl SsdFuzz {
    fn execute_inner(&self, ops: &[FuzzOp]) -> Result<(), Failure> {
        let config = self.config(ops);
        let ssd = Ssd::try_build(config.clone()).map_err(|e| Failure {
            signature: "build.failed".to_string(),
            detail: format!("device assembly failed: {e}"),
        })?;
        let mut x = Exec {
            ssd,
            config,
            shadow: ShadowDisk::new(SPAN),
            cut_armed: ops.iter().any(|op| matches!(op, FuzzOp::ArmCut(..))),
        };
        for &op in ops {
            self.step(&mut x, op)?;
        }
        x.readback("final")
    }

    /// Executes one op and checks its observable result. `Err` carries
    /// either a real divergence or the `episode.over` sentinel.
    fn step(&self, x: &mut Exec, op: FuzzOp) -> Result<(), Failure> {
        let cut_armed = x.cut_armed;
        let illegal = |host_op: HostOp, what: &str, e: &FtlError| -> Option<Failure> {
            (!error_is_legal(host_op, e, cut_armed)).then(|| Failure {
                signature: format!("{what}.illegal_error.{}", e.signature()),
                detail: format!("illegal {what} error: {e}"),
            })
        };
        match op {
            FuzzOp::Read(lba) => {
                // Per-op read check: the same oracle as the readback pass,
                // scoped to one LBA.
                let mut buf = vec![0u8; BLOCK_SIZE];
                match x.ssd.ftl_mut().read(Lba(lba), &mut buf) {
                    Ok(ReadOutcome::Wild { entry }) => {
                        return Err(Failure {
                            signature: "read.wild_entry".to_string(),
                            detail: format!("lba {lba}: wild L2P entry {entry:#x}"),
                        });
                    }
                    Ok(ReadOutcome::GuardMismatch { ppn }) => {
                        return Err(Failure {
                            signature: "read.guard_mismatch".to_string(),
                            detail: format!("lba {lba}: guard mismatch at {ppn}"),
                        });
                    }
                    Ok(_) => {
                        if !x.shadow.acceptable(lba, &buf) {
                            return Err(Failure {
                                signature: "read.divergence".to_string(),
                                detail: format!(
                                    "lba {lba}: read fill {:#04x}, shadow allows {}",
                                    buf[0],
                                    x.shadow.describe(lba)
                                ),
                            });
                        }
                    }
                    Err(FtlError::PowerLoss) => {
                        // A read changes nothing; no uncertainty to record.
                        let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                        return x.remount(ssd);
                    }
                    Err(e) => {
                        if let Some(f) = illegal(HostOp::Read, "read", &e) {
                            return Err(f);
                        }
                    }
                }
            }
            FuzzOp::Write(lba, fill) => {
                let data = vec![fill; BLOCK_SIZE];
                match x.ssd.ftl_mut().write(Lba(lba), &data) {
                    Ok(_) => {
                        if x.shadow.read_only() {
                            return Err(Failure {
                                signature: "write.succeeded_read_only".to_string(),
                                detail: format!(
                                    "lba {lba}: write acknowledged after read-only degradation"
                                ),
                            });
                        }
                        x.shadow.commit_write(lba, fill);
                    }
                    Err(FtlError::PowerLoss) => {
                        x.shadow.interrupt_write(lba, fill);
                        let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                        return x.remount(ssd);
                    }
                    Err(FtlError::ReadOnly) => x.shadow.mark_read_only(),
                    Err(e) => {
                        if let Some(f) = illegal(HostOp::Write, "write", &e) {
                            return Err(f);
                        }
                    }
                }
            }
            FuzzOp::Trim(lba) => match x.ssd.ftl_mut().trim(Lba(lba)) {
                Ok(()) => {
                    if x.shadow.read_only() {
                        return Err(Failure {
                            signature: "trim.succeeded_read_only".to_string(),
                            detail: format!(
                                "lba {lba}: trim acknowledged after read-only degradation"
                            ),
                        });
                    }
                    x.shadow.commit_trim(lba);
                }
                Err(FtlError::PowerLoss) => {
                    x.shadow.interrupt_trim(lba);
                    let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                    return x.remount(ssd);
                }
                Err(FtlError::ReadOnly) => x.shadow.mark_read_only(),
                Err(e) => {
                    if let Some(f) = illegal(HostOp::Trim, "trim", &e) {
                        return Err(f);
                    }
                }
            },
            FuzzOp::Flush => match x.ssd.ftl_mut().flush() {
                Ok(()) => {}
                Err(FtlError::PowerLoss) => {
                    let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                    return x.remount(ssd);
                }
                Err(FtlError::ReadOnly) => x.shadow.mark_read_only(),
                Err(e) => {
                    if let Some(f) = illegal(HostOp::Flush, "flush", &e) {
                        return Err(f);
                    }
                }
            },
            FuzzOp::Scrub => match x.ssd.ftl_mut().scrub_chunk(8, 4) {
                Ok(()) => {}
                Err(FtlError::PowerLoss) => {
                    let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                    return x.remount(ssd);
                }
                Err(FtlError::ReadOnly) => x.shadow.mark_read_only(),
                Err(e) => {
                    if let Some(f) = illegal(HostOp::Scrub, "scrub", &e) {
                        return Err(f);
                    }
                }
            },
            FuzzOp::Hammer(i) => return self.hammer(x, i),
            FuzzOp::PowerCycle => {
                let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                return x.remount(ssd);
            }
            FuzzOp::ArmCut(..) => {} // baked into the fault plane at build
        }
        Ok(())
    }

    /// One registry-driven hammer burst: plan the combo's pattern over the
    /// victim's target rows; when the invulnerable module yields no
    /// plannable sites (the common case), aim the burst at mapped-span
    /// entries so the real `hammer_reads` path still runs. Either way the
    /// oracle is the same: a lawful result and zero flips.
    fn hammer(&self, x: &mut Exec, i: u8) -> Result<(), Failure> {
        let grid = combos();
        let (pattern, victim_name) = grid[usize::from(i) % grid.len()];
        let victim = make_victim(victim_name).expect("registered victim");
        let targets = victim.target_rows(x.ssd.ftl());
        let sites = enumerate_sites(x.ssd.ftl(), &targets);
        let hammerer = make_hammerer(pattern).expect("registered pattern");
        let result = match hammerer.plan(&sites) {
            Ok(plan) => x.ssd.ftl_mut().hammer_reads_with(
                &plan.pattern,
                HAMMER_REQUESTS,
                HAMMER_RATE * plan.rate_scale,
                plan.opts,
            ),
            Err(_) => {
                let lbas = [Lba(u64::from(i) % SPAN), Lba((u64::from(i) + 1) % SPAN)];
                x.ssd.ftl_mut().hammer_reads_with(
                    &lbas,
                    HAMMER_REQUESTS,
                    HAMMER_RATE,
                    HammerOptions::default(),
                )
            }
        };
        match result {
            Ok(report) => {
                if !report.flips.is_empty() {
                    return Err(Failure {
                        signature: "hammer.flips_on_invulnerable".to_string(),
                        detail: format!(
                            "{} flips from {pattern}x{victim_name} on the invulnerable module",
                            report.flips.len()
                        ),
                    });
                }
            }
            Err(FtlError::PowerLoss) => {
                let ssd = std::mem::replace(&mut x.ssd, Ssd::build(x.config.clone()));
                return x.remount(ssd);
            }
            Err(e) => {
                if !error_is_legal(HostOp::Hammer, &e, x.cut_armed) {
                    return Err(Failure {
                        signature: format!("hammer.illegal_error.{}", e.signature()),
                        detail: format!("illegal hammer error: {e}"),
                    });
                }
            }
        }
        Ok(())
    }
}

// ---- campaign ---------------------------------------------------------------

/// Campaign options beyond `(seed, threads)` — the `repro fuzz` flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzOpts<'a> {
    /// Larger episode count (`--full`).
    pub full: bool,
    /// Episode-count override (`--soak N`).
    pub soak: Option<usize>,
    /// Persist completed episodes to this checkpoint file.
    pub checkpoint: Option<&'a Path>,
    /// Restore completed episodes from the checkpoint before running.
    pub resume: bool,
    /// Stop launching new episodes after this many.
    pub abort_after: Option<usize>,
}

/// Ops per generated episode.
const OPS_PER_EPISODE: usize = 40;

/// Execution budget per shrink (re-runs of the sequence). Episodes are
/// short and the device tiny, so a generous budget is still milliseconds;
/// it has to cover several ddmin/param-shrink alternations.
const SHRINK_BUDGET: usize = 4000;

fn episode_count(opts: &FuzzOpts<'_>) -> usize {
    opts.soak.unwrap_or(if opts.full { 64 } else { 24 })
}

/// One supervised shard's result: did the episode diverge, and if so into
/// what minimized case.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EpisodeOutcome {
    seed: u64,
    hammer_bursts: u64,
    failure: Option<MinimizedCase>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct MinimizedCase {
    signature: String,
    detail: String,
    ops: Vec<FuzzOp>,
    original_len: usize,
    shrink_execs: usize,
}

impl MinimizedCase {
    fn from_case(case: &FuzzCase<FuzzOp>) -> MinimizedCase {
        MinimizedCase {
            signature: case.failure.signature.clone(),
            detail: case.failure.detail.clone(),
            ops: case.ops.clone(),
            original_len: case.original_len,
            shrink_execs: case.shrink_execs,
        }
    }
}

fn encode_outcome(o: &EpisodeOutcome) -> Json {
    let mut fields = vec![
        ("seed", Json::from(o.seed)),
        ("hammer_bursts", Json::from(o.hammer_bursts)),
    ];
    if let Some(f) = &o.failure {
        fields.push((
            "failure",
            Json::obj([
                ("signature", Json::str(f.signature.as_str())),
                ("detail", Json::str(f.detail.as_str())),
                ("original_len", Json::from(f.original_len)),
                ("shrink_execs", Json::from(f.shrink_execs)),
                ("ops", Json::Arr(f.ops.iter().map(encode_op).collect())),
            ]),
        ));
    }
    Json::obj(fields)
}

fn decode_outcome(j: &Json) -> Option<EpisodeOutcome> {
    let seed = j.get("seed").and_then(Json::as_u64)?;
    let hammer_bursts = j.get("hammer_bursts").and_then(Json::as_u64)?;
    let failure = match j.get("failure") {
        None => None,
        Some(f) => Some(MinimizedCase {
            signature: f.get("signature").and_then(Json::as_str)?.to_string(),
            detail: f.get("detail").and_then(Json::as_str)?.to_string(),
            original_len: f.get("original_len").and_then(Json::as_u64)? as usize,
            shrink_execs: f.get("shrink_execs").and_then(Json::as_u64)? as usize,
            ops: f
                .get("ops")
                .and_then(Json::as_arr)?
                .iter()
                .map(decode_op)
                .collect::<Option<Vec<_>>>()?,
        }),
    };
    Some(EpisodeOutcome {
        seed,
        hammer_bursts,
        failure,
    })
}

/// Runs one supervised episode: generate, execute, shrink on divergence.
fn run_one(target: &SsdFuzz, seed: u64) -> EpisodeOutcome {
    let ops = ssdhammer_simkit::fuzz::gen_ops(target, seed, OPS_PER_EPISODE);
    let hammer_bursts = ops
        .iter()
        .filter(|op| matches!(op, FuzzOp::Hammer(_)))
        .count() as u64;
    let failure = run_episode(target, seed, OPS_PER_EPISODE, SHRINK_BUDGET)
        .map(|case| MinimizedCase::from_case(&case));
    EpisodeOutcome {
        seed,
        hammer_bursts,
        failure,
    }
}

/// Runs the soak campaign: `episodes` supervised episodes, divergences
/// auto-shrunk and bucketed into the structured result document. The
/// document is bit-identical for any `threads`, and — when checkpointed,
/// killed, and resumed — bit-identical to an uninterrupted run.
#[must_use]
pub fn run_soak(seed: u64, threads: usize, opts: &FuzzOpts<'_>) -> Json {
    let episodes = episode_count(opts);
    let target = SsdFuzz::default();
    let registry = Telemetry::new();
    let mut sup = Supervisor::new(seed)
        .with_tag("fuzz")
        .with_threads(threads)
        .with_sim_budget(SimDuration::from_secs(600))
        .with_max_retries(1)
        .attach_telemetry(&registry);
    if let Some(n) = opts.abort_after {
        sup = sup.with_stop_after(n);
    }
    let shard = |ctx: &ssdhammer_simkit::supervisor::ShardCtx| run_one(&target, ctx.trial.seed);
    let report = match opts.checkpoint {
        Some(path) => {
            let codec = JsonCodec {
                encode: encode_outcome,
                decode: decode_outcome,
            };
            sup.run_checkpointed(episodes, path, opts.resume, codec, shard)
                .expect("fuzz checkpoint")
        }
        None => sup.run(episodes, shard),
    };
    count_outcomes(&registry, &report);
    document(seed, episodes, &report)
}

/// Registers and bumps the `fuzz.*` counters from the merged report.
fn count_outcomes(registry: &Telemetry, report: &SupervisedReport<EpisodeOutcome>) {
    let mut divergences = 0u64;
    let mut shrink_execs = 0u64;
    let mut bursts = 0u64;
    for o in report.values() {
        bursts += o.hammer_bursts;
        if let Some(f) = &o.failure {
            divergences += 1;
            shrink_execs += f.shrink_execs as u64;
        }
    }
    registry
        .counter("fuzz.episodes")
        .add(report.values().count() as u64);
    registry.counter("fuzz.divergences").add(divergences);
    registry.counter("fuzz.shrink_execs").add(shrink_execs);
    registry.counter("fuzz.hammer.bursts").add(bursts);
}

/// Assembles the soak result document. `resumed` is deliberately omitted:
/// it differs between a resumed and an uninterrupted run, and the
/// document must not.
fn document(seed: u64, episodes: usize, report: &SupervisedReport<EpisodeOutcome>) -> Json {
    let mut pass = 0u64;
    let mut bursts = 0u64;
    let mut shrink_execs = 0u64;
    let mut buckets: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut failures = Vec::new();
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let ssdhammer_simkit::supervisor::ShardOutcome::Ok(o) = outcome else {
            continue;
        };
        bursts += o.hammer_bursts;
        match &o.failure {
            None => pass += 1,
            Some(f) => {
                *buckets.entry(f.signature.clone()).or_insert(0) += 1;
                shrink_execs += f.shrink_execs as u64;
                failures.push(Json::obj([
                    ("episode", Json::from(i)),
                    ("seed", Json::from(o.seed)),
                    ("signature", Json::str(f.signature.as_str())),
                    ("detail", Json::str(f.detail.as_str())),
                    ("original_len", Json::from(f.original_len)),
                    ("minimized_len", Json::from(f.ops.len())),
                    ("shrink_execs", Json::from(f.shrink_execs)),
                    ("ops", Json::Arr(f.ops.iter().map(encode_op).collect())),
                ]));
            }
        }
    }
    let fail = failures.len() as u64;
    Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("mode", Json::str("soak")),
        ("seed", Json::from(seed)),
        ("episodes", Json::from(episodes)),
        ("ops_per_episode", Json::from(OPS_PER_EPISODE)),
        ("degraded", Json::from(report.degraded())),
        (
            "summary",
            Json::obj([
                ("pass", Json::from(pass)),
                ("fail", Json::from(fail)),
                ("hammer_bursts", Json::from(bursts)),
                ("shrink_execs", Json::from(shrink_execs)),
                ("timeouts", Json::from(report.timeouts)),
                ("panics", Json::from(report.panics)),
                ("skipped", Json::from(report.skipped)),
                ("retries", Json::from(report.retries)),
                (
                    "buckets",
                    Json::Obj(
                        buckets
                            .into_iter()
                            .map(|(k, v)| (k, Json::from(v)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("failures", Json::Arr(failures)),
    ])
}

// ---- corpus -----------------------------------------------------------------

/// Serializes a minimized case in the corpus file format.
#[must_use]
pub fn case_to_json(name: &str, seed: u64, signature: &str, ops: &[FuzzOp]) -> Json {
    Json::obj([
        ("schema", Json::str(CASE_SCHEMA)),
        ("name", Json::str(name)),
        ("seed", Json::from(seed)),
        ("signature", Json::str(signature)),
        ("ops", Json::Arr(ops.iter().map(encode_op).collect())),
    ])
}

fn case_from_json(doc: &Json) -> Option<(String, Vec<FuzzOp>)> {
    if doc.get("schema").and_then(Json::as_str) != Some(CASE_SCHEMA) {
        return None;
    }
    let name = doc.get("name").and_then(Json::as_str)?.to_string();
    let ops = doc
        .get("ops")
        .and_then(Json::as_arr)?
        .iter()
        .map(decode_op)
        .collect::<Option<Vec<_>>>()?;
    Some((name, ops))
}

/// Replays every corpus case under `dir` (sorted by filename) against the
/// current stack and reports per-case verdicts. Each case must pass: a
/// corpus case is a minimized repro of a past or planted divergence, and
/// replaying clean proves the stack (with its defenses on) still holds.
#[must_use]
pub fn run_replay(dir: &Path) -> Json {
    let target = SsdFuzz::default();
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    let mut rows = Vec::new();
    let mut diverged = 0u64;
    for path in &files {
        let file = path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        let verdict = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| case_from_json(&doc));
        let (status, detail) = match verdict {
            None => ("unreadable".to_string(), "not a corpus case".to_string()),
            Some((name, ops)) => match target.execute(&ops) {
                Verdict::Pass => ("pass".to_string(), name),
                Verdict::Fail(f) => ("diverged".to_string(), format!("{name}: {}", f.detail)),
            },
        };
        if status != "pass" {
            diverged += 1;
        }
        rows.push(Json::obj([
            ("file", Json::str(file.as_str())),
            ("status", Json::str(status.as_str())),
            ("detail", Json::str(detail.as_str())),
        ]));
    }
    let registry = Telemetry::new();
    registry
        .counter("fuzz.corpus_replayed")
        .add(rows.len() as u64);
    Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("mode", Json::str("replay")),
        ("cases", Json::from(rows.len())),
        ("degraded", Json::from(diverged > 0)),
        (
            "summary",
            Json::obj([
                ("replayed", Json::from(rows.len())),
                ("diverged", Json::from(diverged)),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ])
}

/// Renders a campaign (soak or replay) document as text.
#[must_use]
pub fn render(doc: &Json) -> String {
    let get_u64 = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
    let mut out = String::from("model-based fuzz: generator > executor > oracle > shrinker\n");
    let summary = doc.get("summary");
    if doc.get("mode").and_then(Json::as_str) == Some("replay") {
        out.push_str(&format!(
            "corpus replay: {} cases, {} diverged\n",
            get_u64(doc, "cases"),
            summary.map_or(0, |s| get_u64(s, "diverged")),
        ));
        if let Some(results) = doc.get("results").and_then(Json::as_arr) {
            for r in results {
                out.push_str(&format!(
                    "  {:<44} {}\n",
                    r.get("file").and_then(Json::as_str).unwrap_or("?"),
                    r.get("status").and_then(Json::as_str).unwrap_or("?"),
                ));
            }
        }
    } else {
        out.push_str(&format!(
            "soak: {} episodes x {} ops (seed {})\n",
            get_u64(doc, "episodes"),
            get_u64(doc, "ops_per_episode"),
            get_u64(doc, "seed"),
        ));
        if let Some(s) = summary {
            out.push_str(&format!(
                "pass={} fail={} hammer_bursts={} shrink_execs={} timeouts={} panics={} skipped={}\n",
                get_u64(s, "pass"),
                get_u64(s, "fail"),
                get_u64(s, "hammer_bursts"),
                get_u64(s, "shrink_execs"),
                get_u64(s, "timeouts"),
                get_u64(s, "panics"),
                get_u64(s, "skipped"),
            ));
            if let Some(buckets) = s.get("buckets").and_then(Json::as_obj) {
                for (sig, n) in buckets {
                    out.push_str(&format!(
                        "  bucket {:<36} {}\n",
                        sig,
                        n.as_u64().unwrap_or(0)
                    ));
                }
            }
        }
        if let Some(failures) = doc.get("failures").and_then(Json::as_arr) {
            for f in failures {
                out.push_str(&format!(
                    "  episode {} seed {}: {} ({} -> {} ops)\n",
                    get_u64(f, "episode"),
                    get_u64(f, "seed"),
                    f.get("signature").and_then(Json::as_str).unwrap_or("?"),
                    get_u64(f, "original_len"),
                    get_u64(f, "minimized_len"),
                ));
            }
        }
    }
    if doc.get("degraded").and_then(Json::as_bool) == Some(true) {
        out.push_str("WARNING: divergences or partial results (degraded run)\n");
    }
    out
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro fuzz [--soak N | --replay DIR]`.
#[derive(Debug, Clone, Copy)]
pub struct FuzzScenario;

impl FuzzScenario {
    fn run_cfg(cfg: &ScenarioCfg, seed: u64, threads: usize) -> Json {
        match &cfg.replay {
            Some(dir) => run_replay(dir),
            None => run_soak(
                seed,
                threads,
                &FuzzOpts {
                    full: cfg.full,
                    soak: cfg.soak,
                    checkpoint: cfg.checkpoint.as_deref(),
                    resume: cfg.resume,
                    abort_after: cfg.abort_after,
                },
            ),
        }
    }
}

impl Scenario for FuzzScenario {
    fn name(&self) -> &'static str {
        "fuzz"
    }

    fn run(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        Self::run_cfg(&cfg, seed, threads)
    }

    fn render(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&Self::run_cfg(&cfg, seed, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soak(seed: u64, threads: usize, episodes: usize) -> Json {
        run_soak(
            seed,
            threads,
            &FuzzOpts {
                soak: Some(episodes),
                ..FuzzOpts::default()
            },
        )
    }

    #[test]
    fn op_codec_roundtrips_every_variant() {
        let ops = [
            FuzzOp::Read(3),
            FuzzOp::Write(7, 0xAB),
            FuzzOp::Trim(1),
            FuzzOp::Flush,
            FuzzOp::Scrub,
            FuzzOp::Hammer(5),
            FuzzOp::PowerCycle,
            FuzzOp::ArmCut(2, 4),
        ];
        for op in ops {
            assert_eq!(decode_op(&encode_op(&op)), Some(op), "{op:?}");
        }
    }

    #[test]
    fn soak_on_the_correct_stack_is_clean() {
        let doc = soak(7, 2, 8);
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("fail").and_then(Json::as_u64), Some(0));
        assert_eq!(summary.get("pass").and_then(Json::as_u64), Some(8));
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn thread_count_does_not_change_the_document() {
        let one = soak(11, 1, 6).to_string();
        let four = soak(11, 4, 6).to_string();
        assert_eq!(one, four);
    }

    #[test]
    fn planted_journal_bug_is_caught_and_shrinks_small() {
        // Disable journal-replay CRC verification: a cut mid-append now
        // replays the torn tail as a wild `lba -> ppn 0` mapping. The
        // oracle must catch the divergence and ddmin must shrink it to a
        // handful of ops (the acceptance bound is 8).
        let target = SsdFuzz { verify_crc: false };
        let mut caught = None;
        for seed in 0..200u64 {
            if let Some(case) = run_episode(&target, seed, OPS_PER_EPISODE, SHRINK_BUDGET) {
                caught = Some(case);
                break;
            }
        }
        let case = caught.expect("planted bug must be caught within 200 seeds");
        assert!(
            case.ops.len() <= 8,
            "minimized repro has {} ops: {:?}",
            case.ops.len(),
            case.ops
        );
        assert!(
            case.ops.iter().any(|op| matches!(op, FuzzOp::ArmCut(..))),
            "repro must keep the armed cut: {:?}",
            case.ops
        );
        // The minimized case still reproduces, and the same sequence is
        // clean with the defense on.
        assert!(matches!(target.execute(&case.ops), Verdict::Fail(_)));
        assert!(matches!(
            SsdFuzz::default().execute(&case.ops),
            Verdict::Pass
        ));
    }

    #[test]
    fn corpus_replays_clean() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
        let doc = run_replay(&dir);
        let summary = doc.get("summary").expect("summary");
        let replayed = summary.get("replayed").and_then(Json::as_u64).unwrap_or(0);
        assert!(replayed > 0, "committed corpus must not be empty");
        assert_eq!(summary.get("diverged").and_then(Json::as_u64), Some(0));
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(false));
        // Case 001 is the planted-bug repro: prove it is not a stale
        // artifact by confirming it still bites with the defense off.
        let text = std::fs::read_to_string(dir.join("001-journal-torn-tail.json")).unwrap();
        let (_, ops) = case_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(matches!(
            SsdFuzz { verify_crc: false }.execute(&ops),
            Verdict::Fail(_)
        ));
    }

    #[test]
    fn aborted_soak_resumes_bit_identical() {
        let mut path = std::env::temp_dir();
        path.push(format!("ssdhammer-fuzz-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let uninterrupted = soak(7, 2, 6).to_string();
        let killed = run_soak(
            7,
            2,
            &FuzzOpts {
                soak: Some(6),
                checkpoint: Some(&path),
                abort_after: Some(2),
                ..FuzzOpts::default()
            },
        );
        assert_eq!(killed.get("degraded").and_then(Json::as_bool), Some(true));
        let resumed = run_soak(
            7,
            1,
            &FuzzOpts {
                soak: Some(6),
                checkpoint: Some(&path),
                resume: true,
                ..FuzzOpts::default()
            },
        );
        assert_eq!(resumed.to_string(), uninterrupted);
        let _ = std::fs::remove_file(&path);
    }
}
