//! The attack campaign grid (`repro attacks`): every hammer pattern from
//! the registry crossed with every victim structure, each cell one
//! [`AttackPipeline`] run on a fresh swizzled-mapping device.
//!
//! The grid is the modular-pipeline payoff: §3.1's demonstrated two-sided /
//! L2P attack is one cell; TRRespass-style many-sided, one-location, and
//! RowPress dwell patterns against the bad-block table, the journal write
//! cache, and the wear counters are the rest. Cells where a combination is
//! structurally impossible (many-sided needs six same-bank sites; the
//! single-row metadata mirrors cannot provide them) report the typed error
//! instead of a result — that, too, is a finding.
//!
//! Cells are sharded across a supervised campaign ([`Supervisor`] over
//! the same deterministic [`Campaign`] sharding), so the output document
//! is bit-identical for any `--threads` value — and, with
//! `--checkpoint`/`--resume`, bit-identical whether or not the campaign
//! was killed and resumed partway.
//!
//! [`Campaign`]: ssdhammer_simkit::parallel::Campaign

use std::path::Path;

use ssdhammer_core::{pattern_names, victim_names, AttackError, AttackPipeline};
use ssdhammer_dram::{DramGeneration, DramGeometry, MappingKind, ModuleProfile};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_nvme::{Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::supervisor::{JsonCodec, SupervisedReport, Supervisor};
use ssdhammer_simkit::SimDuration;

/// One (pattern, victim) cell of the campaign grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Hammer pattern registry name.
    pub pattern: &'static str,
    /// Victim structure registry name.
    pub victim: &'static str,
    /// Placement the cell used (`same_bank` for many-sided, else
    /// `cross_bank`).
    pub placement: &'static str,
    /// Sites the pattern spanned.
    pub sites_used: usize,
    /// Physical bitflips induced.
    pub flips: u64,
    /// Achieved DRAM activation rate, accesses/s.
    pub achieved_rate: f64,
    /// Victim units whose observation changed.
    pub changes: u64,
    /// Changes the host would not notice (usable by the exploit chain).
    pub silent: u64,
    /// Changes surfacing as device errors.
    pub loud: u64,
    /// Typed pipeline error, when the combination cannot run.
    pub error: Option<String>,
}

impl GridCell {
    /// Decodes a checkpointed cell; registry names map back to their
    /// `&'static str` entries. `None` (undecodable) makes the supervisor
    /// re-run the shard live.
    fn from_json(j: &Json) -> Option<GridCell> {
        let interned = |names: &[&'static str], v: &str| names.iter().find(|n| **n == v).copied();
        let pattern = interned(pattern_names(), j.get("pattern").and_then(Json::as_str)?)?;
        let victim = interned(victim_names(), j.get("victim").and_then(Json::as_str)?)?;
        let placement = interned(
            &["same_bank", "cross_bank"],
            j.get("placement").and_then(Json::as_str)?,
        )?;
        Some(GridCell {
            pattern,
            victim,
            placement,
            sites_used: usize::try_from(j.get("sites_used").and_then(Json::as_u64)?).ok()?,
            flips: j.get("flips").and_then(Json::as_u64)?,
            achieved_rate: j.get("achieved_rate").and_then(Json::as_f64)?,
            changes: j.get("changes").and_then(Json::as_u64)?,
            silent: j.get("silent").and_then(Json::as_u64)?,
            loud: j.get("loud").and_then(Json::as_u64)?,
            error: j
                .get("error")
                .and_then(Json::as_str)
                .map(ToString::to_string),
        })
    }
}

impl ToJson for GridCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pattern", Json::from(self.pattern)),
            ("victim", Json::from(self.victim)),
            ("placement", Json::from(self.placement)),
            ("sites_used", Json::from(self.sites_used)),
            ("flips", Json::from(self.flips)),
            ("achieved_rate", Json::from(self.achieved_rate)),
            ("changes", Json::from(self.changes)),
            ("silent", Json::from(self.silent)),
            ("loud", Json::from(self.loud)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::str(e.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Deterministically vulnerable DDR4 under the XOR-swizzled controller
/// mapping — the mapping that interleaves the metadata mirrors' rows with
/// L2P rows, making every victim in the registry reachable.
fn grid_config(seed: u64) -> SsdConfig {
    let mut p = ModuleProfile::from_min_rate("grid DDR4", DramGeneration::Ddr4, 2020, 313);
    p.row_vulnerable_prob = 1.0;
    p.weak_cells_per_row = 8.0;
    let mut c = SsdConfig::test_small(seed);
    c.dram_geometry = DramGeometry::tiny_test();
    c.dram_profile = p;
    c.dram_mapping = MappingKind::default_xor();
    c.flash_geometry = FlashGeometry::mib64();
    c
}

/// Placement a pattern wants: many-sided needs its aggressor pairs in one
/// bank; everything else takes the weakest sites wherever they are.
fn placement_for(pattern: &str) -> &'static str {
    if pattern == "many_sided" {
        "same_bank"
    } else {
        "cross_bank"
    }
}

/// Runs one grid cell on a fresh device.
fn run_cell(seed: u64, pattern: &'static str, victim: &'static str) -> GridCell {
    let placement = placement_for(pattern);
    let pipeline = AttackPipeline::from_names(pattern, victim, placement)
        .expect("registry names are valid")
        .with_rate(2_000_000.0)
        .with_duration(SimDuration::from_millis(400));
    let mut config = grid_config(seed);
    pipeline.configure(&mut config);
    let mut ssd = Ssd::build(config);
    let mut cell = GridCell {
        pattern,
        victim,
        placement,
        sites_used: 0,
        flips: 0,
        achieved_rate: 0.0,
        changes: 0,
        silent: 0,
        loud: 0,
        error: None,
    };
    match pipeline.run(&mut ssd) {
        Ok(outcome) => {
            cell.sites_used = outcome.sites_used;
            cell.flips = outcome.report.flips.len() as u64;
            cell.achieved_rate = outcome.report.achieved_rate;
            cell.changes = outcome.changes.len() as u64;
            cell.silent = outcome.silent_count() as u64;
            cell.loud = outcome.loud_count() as u64;
        }
        Err(e) => cell.error = Some(e.to_string()),
    }
    cell
}

/// Runs the full grid single-threaded.
///
/// # Errors
///
/// `Unknown*` when a filter names nothing in the registries.
pub fn run(seed: u64) -> Result<Vec<GridCell>, AttackError> {
    run_filtered(seed, 1, None, None)
}

/// Runs the (optionally filtered) grid, cells sharded across `threads`
/// workers; output is bit-identical for any thread count.
///
/// # Errors
///
/// [`AttackError::UnknownPattern`] / [`AttackError::UnknownVictim`] when a
/// filter names nothing in the registries.
pub fn run_filtered(
    seed: u64,
    threads: usize,
    pattern: Option<&str>,
    victim: Option<&str>,
) -> Result<Vec<GridCell>, AttackError> {
    let report = run_supervised(seed, threads, pattern, victim, None, false, None)?;
    Ok(report.values().cloned().collect())
}

/// [`run_filtered`] under full supervision: panic isolation, optional
/// checkpoint persistence after every completed cell (`checkpoint` +
/// `resume`), and the `abort_after` kill-switch CI uses to prove a
/// resumed grid is bit-identical to an uninterrupted one.
///
/// # Errors
///
/// [`AttackError::UnknownPattern`] / [`AttackError::UnknownVictim`] as in
/// [`run_filtered`]; checkpoint I/O failures panic (the file the user
/// asked for cannot be written).
pub fn run_supervised(
    seed: u64,
    threads: usize,
    pattern: Option<&str>,
    victim: Option<&str>,
    checkpoint: Option<&Path>,
    resume: bool,
    abort_after: Option<usize>,
) -> Result<SupervisedReport<GridCell>, AttackError> {
    let patterns: Vec<&'static str> = match pattern {
        Some(p) => vec![*pattern_names()
            .iter()
            .find(|n| **n == p)
            .ok_or_else(|| AttackError::UnknownPattern(p.to_owned()))?],
        None => pattern_names().to_vec(),
    };
    let victims: Vec<&'static str> = match victim {
        Some(v) => vec![*victim_names()
            .iter()
            .find(|n| **n == v)
            .ok_or_else(|| AttackError::UnknownVictim(v.to_owned()))?],
        None => victim_names().to_vec(),
    };
    let cells: Vec<(&'static str, &'static str)> = patterns
        .iter()
        .flat_map(|p| victims.iter().map(move |v| (*p, *v)))
        .collect();
    let mut sup = Supervisor::new(seed)
        .with_tag("attack-grid")
        .with_threads(threads);
    if let Some(n) = abort_after {
        sup = sup.with_stop_after(n);
    }
    let shard = |ctx: &ssdhammer_simkit::supervisor::ShardCtx| {
        let (p, v) = cells[ctx.trial.index];
        run_cell(ctx.trial.seed, p, v)
    };
    Ok(match checkpoint {
        Some(path) => {
            let codec = JsonCodec {
                encode: GridCell::to_json,
                decode: GridCell::from_json,
            };
            sup.run_checkpointed(cells.len(), path, resume, codec, shard)
                .expect("attack-grid checkpoint")
        }
        None => sup.run(cells.len(), shard),
    })
}

/// Renders the grid as a table.
#[must_use]
pub fn render(cells: &[GridCell]) -> String {
    let mut out = String::from(
        "attack campaign grid: hammer pattern x victim structure\n\
         pattern       victim     placement   sites  flips  rate(M/s)  changes  silent  loud\n",
    );
    for c in cells {
        match &c.error {
            Some(e) => out.push_str(&format!(
                "{:<13} {:<10} {:<11} {e}\n",
                c.pattern, c.victim, c.placement
            )),
            None => out.push_str(&format!(
                "{:<13} {:<10} {:<11} {:>5} {:>6} {:>10.2} {:>8} {:>7} {:>5}\n",
                c.pattern,
                c.victim,
                c.placement,
                c.sites_used,
                c.flips,
                c.achieved_rate / 1e6,
                c.changes,
                c.silent,
                c.loud,
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_cell_and_flips_the_flagship() {
        let cells = run(11).expect("grid");
        assert_eq!(cells.len(), pattern_names().len() * victim_names().len());
        assert!(cells.len() >= 16, "grid must span at least 4x4");
        let get = |p: &str, v: &str| {
            cells
                .iter()
                .find(|c| c.pattern == p && c.victim == v)
                .unwrap()
        };
        // The paper's demonstrated cell: double-sided against L2P entries.
        let flagship = get("two_sided", "l2p");
        assert!(flagship.error.is_none());
        assert!(flagship.flips > 0, "{flagship:?}");
        assert!(flagship.silent > 0, "{flagship:?}");
        // Metadata victims are reachable under the swizzled mapping.
        assert!(get("two_sided", "bad_block").error.is_none());
        // Many-sided cannot find six same-bank sites around a single-row
        // metadata mirror; the cell reports the typed error.
        assert!(get("many_sided", "bad_block").error.is_some());
    }

    #[test]
    fn filters_select_and_reject() {
        let one = run_filtered(11, 1, Some("two_sided"), Some("l2p")).expect("cell");
        assert_eq!(one.len(), 1);
        assert!(matches!(
            run_filtered(11, 1, Some("nope"), None),
            Err(AttackError::UnknownPattern(_))
        ));
        assert!(matches!(
            run_filtered(11, 1, None, Some("nope")),
            Err(AttackError::UnknownVictim(_))
        ));
    }

    #[test]
    fn grid_cells_survive_a_checkpoint_round_trip() {
        let mut path = std::env::temp_dir();
        path.push(format!("ssdhammer-attacks-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_filtered(11, 2, None, None).expect("grid");
        let killed =
            run_supervised(11, 2, None, None, Some(&path), false, Some(3)).expect("killed grid");
        assert!(killed.degraded());
        assert_eq!(killed.values().count(), 3);
        let resumed =
            run_supervised(11, 1, None, None, Some(&path), true, None).expect("resumed grid");
        assert!(!resumed.degraded());
        assert_eq!(resumed.resumed, 3);
        let resumed_cells: Vec<GridCell> = resumed.values().cloned().collect();
        assert_eq!(
            resumed_cells.to_json().to_string(),
            uninterrupted.to_json().to_string()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let json = |threads| {
            run_filtered(11, threads, None, None)
                .expect("grid")
                .to_json()
                .to_string()
        };
        assert_eq!(json(1), json(4));
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro attacks` (the unfiltered grid; the binary's
/// `--pattern`/`--victim` flags route through [`run_filtered`]).
#[derive(Debug, Clone, Copy)]
pub struct AttacksScenario;

impl Scenario for AttacksScenario {
    fn name(&self) -> &'static str {
        "attacks"
    }

    fn run(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        if cfg.checkpoint.is_none() && cfg.abort_after.is_none() {
            return run_filtered(seed, threads, None, None)
                .expect("unfiltered grid")
                .to_json();
        }
        // Supervised form: completed cells plus the partial-result marker.
        let report = run_supervised(
            seed,
            threads,
            None,
            None,
            cfg.checkpoint.as_deref(),
            cfg.resume,
            cfg.abort_after,
        )
        .expect("unfiltered grid");
        let cells: Vec<GridCell> = report.values().cloned().collect();
        Json::obj([
            ("degraded", Json::from(report.degraded())),
            ("cells", cells.to_json()),
        ])
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&run_filtered(seed, threads, None, None).expect("unfiltered grid"))
    }
}
