//! Ablations of the design choices DESIGN.md calls out (§5 of the design
//! doc): per-I/O amplification, the unmapped-read fast path, controller
//! mapping structure, and victim-activity as an accidental defense.

use ssdhammer_core::{
    cross_partition_sites, find_attack_sites, setup_entries, AttackPipeline, LbaRange,
};
use ssdhammer_dram::{DramGeneration, DramGeometry, MappingKind, ModuleProfile};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_nvme::{CmdResult, Command, Ssd, SsdConfig};
use ssdhammer_simkit::parallel::Campaign;
use ssdhammer_simkit::{Lba, SimDuration};

fn demo_profile(min_rate_kaps: u32) -> ModuleProfile {
    let mut p = ModuleProfile::from_min_rate("ablation", DramGeneration::Ddr4, 2020, min_rate_kaps);
    p.row_vulnerable_prob = 1.0;
    p.weak_cells_per_row = 24.0;
    p.threshold_spread = 0.3;
    p
}

fn base_config(seed: u64, profile: ModuleProfile) -> SsdConfig {
    let mut c = SsdConfig::test_small(seed);
    c.dram_geometry = DramGeometry::tiny_test();
    c.dram_profile = profile;
    c.dram_mapping = MappingKind::Linear;
    c.flash_geometry = FlashGeometry::mib64();
    c
}

// ---- amplification sweep ---------------------------------------------------

/// One amplification sweep point.
#[derive(Debug, Clone)]
pub struct AmplificationRow {
    /// L2P activations per host request.
    pub amplification: u32,
    /// Achieved activation rate, accesses/s.
    pub act_rate: f64,
    /// Flips produced in a 500 ms burst against the paper's testbed module.
    pub flips: usize,
}

/// Sweeps the §4.1 amplification knob against the testbed DDR3 profile
/// (3 M acc/s needed): on a PCIe 4.0 controller, amplification ≥ 2 crosses
/// the threshold; 1 does not — the quantitative version of "we manually
/// amplified each L2P row activation (5 hammers per I/O request)".
#[must_use]
pub fn amplification_sweep(seed: u64) -> Vec<AmplificationRow> {
    amplification_sweep_threads(seed, 1)
}

/// [`amplification_sweep`] with the four independent sweep points sharded
/// across `threads` workers; bit-identical output for any thread count.
#[must_use]
pub fn amplification_sweep_threads(seed: u64, threads: usize) -> Vec<AmplificationRow> {
    const AMPS: [u32; 4] = [1, 2, 5, 10];
    Campaign::new(seed)
        .with_tag("ablation-amp")
        .with_threads(threads)
        .run(AMPS.len(), |trial| {
            let amp = AMPS[trial.index];
            let mut profile = ModuleProfile::testbed_ddr3();
            profile.row_vulnerable_prob = 1.0;
            profile.weak_cells_per_row = 24.0;
            profile.threshold_spread = 0.3;
            let mut config = base_config(seed, profile);
            config.ftl.hammer_amplification = amp;
            let mut ssd = Ssd::build(config);
            let site = find_attack_sites(ssd.ftl(), 1).pop().expect("site");
            let outcome = AttackPipeline::default()
                .with_rate(10_000_000.0)
                .with_duration(SimDuration::from_millis(500))
                .with_sites(vec![site])
                .run(&mut ssd)
                .expect("hammer");
            AmplificationRow {
                amplification: amp,
                act_rate: outcome.report.achieved_rate,
                flips: outcome.report.flips.len(),
            }
        })
}

// ---- unmapped fast path ----------------------------------------------------

/// Latency comparison for the unmapped-read fast path.
#[derive(Debug, Clone)]
pub struct FastPathRow {
    /// Configuration label.
    pub config: String,
    /// Mean completion latency of an unmapped read.
    pub mean_latency_us: f64,
}

/// Measures per-command latency of unmapped reads with the fast path on vs
/// off — why the paper's attacker prefers trimmed blocks (§3). Reads are
/// issued queue-depth-sized batches at a time through `submit_batch` /
/// `process_all` / `drain_completions` — the batched path the repro suite
/// is required to exercise.
#[must_use]
pub fn fast_path_latency(seed: u64) -> Vec<FastPathRow> {
    fast_path_latency_threads(seed, 1)
}

/// [`fast_path_latency`] with the on/off configurations measured on
/// `threads` workers; bit-identical output for any thread count.
#[must_use]
pub fn fast_path_latency_threads(seed: u64, threads: usize) -> Vec<FastPathRow> {
    const CONFIGS: [bool; 2] = [true, false];
    Campaign::new(seed)
        .with_tag("ablation-fastpath")
        .with_threads(threads)
        .run(CONFIGS.len(), |trial| {
            let fast = CONFIGS[trial.index];
            let mut config = base_config(seed, ModuleProfile::invulnerable());
            config.ftl.unmapped_fast_path = fast;
            let mut ssd = Ssd::build(config);
            let ns = ssd.create_namespace(1024).expect("namespace");
            let qp = ssd.create_queue_pair(16);
            let mut total_us = 0.0;
            let n = 200u64;
            let mut completions = Vec::with_capacity(qp.depth());
            for burst in 0..(n / qp.depth() as u64) {
                let batch: Vec<Command> = (0..qp.depth() as u64)
                    .map(|i| Command::Read {
                        ns,
                        lba: Lba((burst * qp.depth() as u64 + i) % 1024),
                    })
                    .collect();
                ssd.submit_batch(qp, &batch).expect("submit batch");
                ssd.process_all();
                ssd.drain_completions_into(qp, &mut completions)
                    .expect("drain");
                for c in completions.drain(..) {
                    total_us += c.latency().as_secs_f64() * 1e6;
                    match c.result {
                        CmdResult::Read {
                            data,
                            mapped: false,
                        } => ssd.recycle_buffer(data),
                        other => panic!("expected unmapped read, got {other:?}"),
                    }
                }
            }
            let measured = (n / qp.depth() as u64) * qp.depth() as u64;
            FastPathRow {
                config: if fast {
                    "unmapped fast path ON".to_owned()
                } else {
                    "unmapped fast path OFF (flash touched)".to_owned()
                },
                mean_latency_us: total_us / measured as f64,
            }
        })
}

// ---- controller mapping census ----------------------------------------------

/// Site census per controller mapping.
#[derive(Debug, Clone)]
pub struct MappingCensusRow {
    /// Mapping label.
    pub mapping: String,
    /// Total double-sided sites on the L2P table.
    pub total_sites: usize,
    /// Sites usable across an equal two-way partition split.
    pub cross_partition_sites: usize,
}

/// Counts attack sites under linear vs XOR-swizzled controller mappings —
/// the structural source of §4.2's cross-partition triples.
#[must_use]
pub fn mapping_census(seed: u64) -> Vec<MappingCensusRow> {
    mapping_census_threads(seed, 1)
}

/// [`mapping_census`] with the two mapping configurations counted on
/// `threads` workers; bit-identical output for any thread count.
#[must_use]
pub fn mapping_census_threads(seed: u64, threads: usize) -> Vec<MappingCensusRow> {
    let mappings = [
        ("linear", MappingKind::Linear),
        ("xor+swizzle", MappingKind::default_xor()),
    ];
    Campaign::new(seed)
        .with_tag("ablation-mapping")
        .with_threads(threads)
        .run(mappings.len(), |trial| {
            let (name, kind) = mappings[trial.index];
            let mut config = base_config(seed, demo_profile(313));
            config.dram_mapping = kind;
            let ssd = Ssd::build(config);
            let cap = ssd.ftl().capacity_lbas();
            let sites = find_attack_sites(ssd.ftl(), usize::MAX);
            let attacker = LbaRange {
                start: Lba(0),
                blocks: cap / 2,
            };
            let victim = LbaRange {
                start: Lba(cap / 2),
                blocks: cap / 2,
            };
            let cross = cross_partition_sites(&sites, attacker, victim);
            MappingCensusRow {
                mapping: name.to_owned(),
                total_sites: sites.len(),
                cross_partition_sites: cross.len(),
            }
        })
}

// ---- victim activity as a defense -------------------------------------------

/// Flip counts with an idle vs an active victim.
#[derive(Debug, Clone)]
pub struct VictimActivityRow {
    /// Scenario label.
    pub scenario: String,
    /// Flips on the victim row.
    pub victim_row_flips: usize,
}

/// Hammers the same site with the victim row left alone vs periodically
/// read: every access to the victim row re-activates (and thereby
/// refreshes) it, so a *busy* victim is accidentally protected — which is
/// why the attack targets cold metadata like L2P entries of idle files.
#[must_use]
pub fn victim_activity(seed: u64) -> Vec<VictimActivityRow> {
    victim_activity_threads(seed, 1)
}

/// [`victim_activity`] with the idle/active scenarios hammered on `threads`
/// workers; bit-identical output for any thread count.
#[must_use]
pub fn victim_activity_threads(seed: u64, threads: usize) -> Vec<VictimActivityRow> {
    let run = |active_victim: bool| -> usize {
        let mut config = base_config(seed, demo_profile(200));
        config.ftl.hammer_amplification = 1;
        let mut ssd = Ssd::build(config);
        let site = find_attack_sites(ssd.ftl(), 1).pop().expect("site");
        setup_entries(ssd.ftl_mut(), &site.victim_lbas).expect("setup");
        let pattern = [site.above_lbas[0], site.below_lbas[0]];
        // Bursts small enough that no single burst crosses the ~12.8K
        // threshold on its own (8K activations ≈ 5.3 ms each); pressure only
        // accumulates across bursts within a refresh window. Between bursts
        // the victim (maybe) touches its own data, refreshing the row.
        let mut flips = 0usize;
        for _ in 0..100 {
            let report = ssd
                .hammer_device_reads(&pattern, 8_000, 1_500_000.0)
                .expect("hammer");
            flips += report.flips.iter().filter(|f| f.row == site.victim).count();
            if active_victim {
                let _ = ssd.ftl_mut().entry_read(site.victim_lbas[0]);
            }
        }
        flips
    };
    const SCENARIOS: [(&str, bool); 2] = [
        ("idle victim (cold L2P entries)", false),
        ("active victim (row re-read between bursts)", true),
    ];
    Campaign::new(seed)
        .with_tag("ablation-victim")
        .with_threads(threads)
        .run(SCENARIOS.len(), |trial| {
            let (scenario, active) = SCENARIOS[trial.index];
            VictimActivityRow {
                scenario: scenario.to_owned(),
                victim_row_flips: run(active),
            }
        })
}

/// Renders all ablations as one report.
#[must_use]
pub fn render(seed: u64) -> String {
    render_with_threads(seed, 1)
}

/// [`render`] with every sweep sharded across `threads` workers;
/// bit-identical output for any thread count.
#[must_use]
pub fn render_with_threads(seed: u64, threads: usize) -> String {
    let mut out = String::from("ablations of DESIGN.md's called-out choices\n\n");
    out.push_str("A1: per-I/O amplification (testbed DDR3, needs 3M acc/s)\n");
    out.push_str("  amp  act-rate(M/s)  flips\n");
    for r in amplification_sweep_threads(seed, threads) {
        out.push_str(&format!(
            "  {:>3} {:>14.2} {:>6}\n",
            r.amplification,
            r.act_rate / 1e6,
            r.flips
        ));
    }
    out.push_str("\nA2: unmapped-read fast path (per-command latency)\n");
    for r in fast_path_latency_threads(seed, threads) {
        out.push_str(&format!(
            "  {:<40} {:>8.1} us\n",
            r.config, r.mean_latency_us
        ));
    }
    out.push_str("\nA3: controller mapping census (two equal partitions)\n");
    out.push_str("  mapping       total sites  cross-partition\n");
    for r in mapping_census_threads(seed, threads) {
        out.push_str(&format!(
            "  {:<13} {:>11} {:>16}\n",
            r.mapping, r.total_sites, r.cross_partition_sites
        ));
    }
    out.push_str("\nA4: victim activity as accidental defense\n");
    for r in victim_activity_threads(seed, threads) {
        out.push_str(&format!(
            "  {:<44} {:>4} victim-row flips\n",
            r.scenario, r.victim_row_flips
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_crosses_the_testbed_threshold() {
        let rows = amplification_sweep(5);
        let amp1 = &rows[0];
        let amp5 = &rows[2];
        assert!(amp1.act_rate < 3_000_000.0 && amp1.flips == 0);
        assert!(amp5.act_rate > 3_000_000.0 && amp5.flips > 0);
        // Rate scales linearly with the knob.
        assert!((amp5.act_rate / amp1.act_rate - 5.0).abs() < 0.3);
    }

    #[test]
    fn fast_path_is_orders_of_magnitude_faster() {
        let rows = fast_path_latency(5);
        let on = rows[0].mean_latency_us;
        let off = rows[1].mean_latency_us;
        assert!(off > on * 10.0, "fast {on}us vs slow {off}us");
    }

    #[test]
    fn swizzled_mapping_enables_cross_partition_attacks() {
        let rows = mapping_census(5);
        let linear = &rows[0];
        let xor = &rows[1];
        assert_eq!(linear.cross_partition_sites, 0);
        assert!(xor.cross_partition_sites > 0);
        assert!(linear.total_sites > 0);
    }

    #[test]
    fn busy_victims_are_protected() {
        let rows = victim_activity(5);
        let idle = rows[0].victim_row_flips;
        let active = rows[1].victim_row_flips;
        assert!(idle > 0, "idle victim must flip");
        assert!(
            active < idle,
            "victim self-refresh should suppress flips: idle {idle} vs active {active}"
        );
    }
}

// ---- structured output -------------------------------------------------------

use ssdhammer_simkit::json::{Json, ToJson};

impl ToJson for AmplificationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("amplification", Json::from(self.amplification)),
            ("act_rate", Json::from(self.act_rate)),
            ("flips", Json::from(self.flips)),
        ])
    }
}

impl ToJson for FastPathRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::from(self.config.as_str())),
            ("mean_latency_us", Json::from(self.mean_latency_us)),
        ])
    }
}

impl ToJson for MappingCensusRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mapping", Json::from(self.mapping.as_str())),
            ("total_sites", Json::from(self.total_sites)),
            (
                "cross_partition_sites",
                Json::from(self.cross_partition_sites),
            ),
        ])
    }
}

impl ToJson for VictimActivityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::from(self.scenario.as_str())),
            ("victim_row_flips", Json::from(self.victim_row_flips)),
        ])
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro ablations`. The structured document groups
/// the four sweeps under one object.
#[derive(Debug, Clone, Copy)]
pub struct AblationsScenario;

impl Scenario for AblationsScenario {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        Json::obj([
            (
                "amplification",
                amplification_sweep_threads(seed, threads).to_json(),
            ),
            (
                "fast_path",
                fast_path_latency_threads(seed, threads).to_json(),
            ),
            (
                "mapping_census",
                mapping_census_threads(seed, threads).to_json(),
            ),
            (
                "victim_activity",
                victim_activity_threads(seed, threads).to_json(),
            ),
        ])
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render_with_threads(seed, threads)
    }
}
