//! Experiment E2 — **Figure 1**: "A simple example of a two-sided FTL
//! rowhammering attack … redirecting LBA 256 to a different PBA."
//!
//! Reproduces the depicted mechanism as a working run: sequential-write
//! setup, an alternating read workload over LBAs whose L2P entries sit in
//! the two aggressor rows, and the resulting redirection of victim-row
//! LBAs. Also verifies the negative control (sub-threshold rate ⇒ no
//! redirection).

use ssdhammer_core::{
    find_attack_sites, AttackPipeline, CrossBank, L2pEntries, Redirection, TwoSided,
};
use ssdhammer_dram::{DramGeneration, DramGeometry, MappingKind, ModuleProfile};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_nvme::{Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::telemetry::TelemetrySnapshot;
use ssdhammer_simkit::SimDuration;

/// The reproduced Figure 1 run.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Victim row coordinates.
    pub victim_bank: u32,
    /// Victim row coordinates.
    pub victim_row: u32,
    /// LBAs whose entries live in the victim row.
    pub victim_lba_count: usize,
    /// Activation rate achieved, accesses/s.
    pub achieved_rate: f64,
    /// Bitflips induced.
    pub flips: usize,
    /// Host-visible L2P redirections.
    pub redirections: Vec<Redirection>,
    /// Redirections under the sub-threshold negative control.
    pub control_redirections: usize,
}

impl ToJson for Fig1Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("victim_bank", Json::from(self.victim_bank)),
            ("victim_row", Json::from(self.victim_row)),
            ("victim_lba_count", Json::from(self.victim_lba_count)),
            ("achieved_rate", Json::from(self.achieved_rate)),
            ("flips", Json::from(self.flips)),
            ("redirections", self.redirections.to_json()),
            (
                "control_redirections",
                Json::from(self.control_redirections),
            ),
        ])
    }
}

fn build_ssd(seed: u64) -> Ssd {
    let mut profile = ModuleProfile::from_min_rate("fig1 DDR4", DramGeneration::Ddr4, 2020, 313);
    profile.row_vulnerable_prob = 1.0;
    profile.weak_cells_per_row = 6.0;
    let mut config = SsdConfig::test_small(seed);
    config.dram_geometry = DramGeometry::tiny_test();
    config.dram_profile = profile;
    config.dram_mapping = MappingKind::Linear;
    config.flash_geometry = FlashGeometry::mib64();
    config.model.clone_from(&"fig1 demo device".to_owned());
    Ssd::build(config)
}

/// Runs the Figure 1 experiment.
#[must_use]
pub fn run(seed: u64) -> Fig1Result {
    run_with_telemetry(seed).0
}

/// Runs Figure 1 and also returns the attacked device's telemetry snapshot
/// (every layer's counters from the single shared registry, plus the event
/// trace with the flip and redirection records).
#[must_use]
pub fn run_with_telemetry(seed: u64) -> (Fig1Result, TelemetrySnapshot) {
    // The attack proper: a double-sided pipeline against the device's
    // weakest L2P site, aggressor entries included in the setup phase.
    let mut ssd = build_ssd(seed);
    let site = find_attack_sites(ssd.ftl(), 1).pop().expect("site");
    let outcome = AttackPipeline::new(
        TwoSided,
        L2pEntries::default().with_setup_aggressors(true),
        CrossBank,
    )
    .with_rate(1_500_000.0)
    .with_duration(SimDuration::from_millis(500))
    .with_sites(vec![site.clone()])
    .run(&mut ssd)
    .expect("hammer");

    // Negative control on a fresh, identical device at 1/20 the rate.
    let mut control_ssd = build_ssd(seed);
    let control_site = find_attack_sites(control_ssd.ftl(), 1).pop().expect("site");
    let control = AttackPipeline::default()
        .with_rate(75_000.0)
        .with_duration(SimDuration::from_millis(500))
        .with_sites(vec![control_site])
        .run(&mut control_ssd)
        .expect("control hammer");

    let snapshot = ssd.snapshot_telemetry();
    (
        Fig1Result {
            victim_bank: site.victim.bank,
            victim_row: site.victim.row,
            victim_lba_count: site.victim_lbas.len(),
            achieved_rate: outcome.report.achieved_rate,
            flips: outcome.report.flips.len(),
            redirections: outcome.redirections(),
            control_redirections: control.redirections().len(),
        },
        snapshot,
    )
}

/// Renders the result in the spirit of the figure's caption.
#[must_use]
pub fn render(r: &Fig1Result) -> String {
    let mut out = format!(
        "Figure 1: two-sided FTL rowhammering\n\
         victim row: (bank {}, row {}) holding {} L2P entries\n\
         hammer: alternating reads at {:.2}M acc/s -> {} bitflips\n",
        r.victim_bank,
        r.victim_row,
        r.victim_lba_count,
        r.achieved_rate / 1e6,
        r.flips,
    );
    for redir in &r.redirections {
        out.push_str(&format!(
            "  {} redirected {:?} -> {:?}\n",
            redir.lba, redir.from, redir.to
        ));
    }
    out.push_str(&format!(
        "negative control at 75K acc/s: {} redirections\n",
        r.control_redirections
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_redirects_and_control_does_not() {
        let (r, snapshot) = run_with_telemetry(9);
        assert!(r.flips > 0);
        assert!(
            !r.redirections.is_empty(),
            "the depicted redirection occurs"
        );
        assert_eq!(r.control_redirections, 0, "sub-threshold control is clean");
        // The exported snapshot carries every layer's counters, including
        // the fault plane and the integrity/scrub planes (zero on this
        // undefended device, but present for dashboards to scrape).
        for name in [
            "fault.consults",
            "fault.injected",
            "integrity.detected",
            "scrub.repairs",
            "recovery.uncorrectable_reads",
        ] {
            assert!(snapshot.counter(name).is_some(), "snapshot missing {name}");
        }
        // The pipeline stamps per-stage counters keyed by registry name.
        assert_eq!(snapshot.counter("attack.pattern.two_sided.cycles"), Some(1));
        assert_eq!(snapshot.counter("attack.victim.l2p.cycles"), Some(1));
        assert!(
            snapshot
                .counter("attack.victim.l2p.changes")
                .is_some_and(|n| n > 0),
            "victim change counter missing or zero"
        );
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro fig1`. The telemetry-snapshot side file is
/// a `repro`-binary concern ([`run_with_telemetry`] exposes the snapshot);
/// the scenario itself returns only the figure's result document.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Scenario;

impl Scenario for Fig1Scenario {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> Json {
        run(seed).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> String {
        render(&run(seed))
    }
}
