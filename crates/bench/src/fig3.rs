//! Experiment E4 — **Figure 3 / §4.2**: the end-to-end ext4 indirect-block
//! exploit on a shared SSD, with the time-to-first-useful-bitflip
//! measurement ("on our testbed this took about two hours, … longer than
//! expected in practice because SPDK limits file spraying to 5% of the
//! victim partition").

use ssdhammer_cloud::{run_case_study, CaseStudyConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::SimDuration;

/// Summary of one end-to-end run.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Spray limit used (fraction of the victim partition).
    pub spray_fraction: f64,
    /// Whether the secret leaked.
    pub success: bool,
    /// Cycles needed.
    pub cycles: u32,
    /// Total DRAM flips across the run.
    pub total_flips: u64,
    /// Detected corruption events that carried no secret.
    pub corruption_events: usize,
    /// Simulated time to success (or give-up).
    pub time: SimDuration,
    /// Whether metadata corruption ended the run prematurely.
    pub aborted_by_corruption: bool,
}

impl ToJson for Fig3Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spray_fraction", Json::from(self.spray_fraction)),
            ("success", Json::from(self.success)),
            ("cycles", Json::from(self.cycles)),
            ("total_flips", Json::from(self.total_flips)),
            ("corruption_events", Json::from(self.corruption_events)),
            ("time_secs", Json::from(self.time.as_secs_f64())),
            (
                "aborted_by_corruption",
                Json::from(self.aborted_by_corruption),
            ),
        ])
    }
}

/// Runs the end-to-end case study at the given spray fraction (the §4.2
/// ablation: lower spray limits stretch the time to success).
#[must_use]
pub fn run_with_spray(seed: u64, spray_fraction: f64, max_cycles: u32) -> Fig3Result {
    let mut config = CaseStudyConfig::fast_demo(seed);
    config.spray_fraction = spray_fraction;
    config.max_cycles = max_cycles;
    let outcome = run_case_study(&config).expect("case study");
    Fig3Result {
        spray_fraction,
        success: outcome.success,
        cycles: outcome.cycles.len() as u32,
        total_flips: outcome.cycles.iter().map(|c| c.flips).sum(),
        corruption_events: outcome.corruption_events,
        time: outcome.total_time,
        aborted_by_corruption: outcome.aborted_by_corruption,
    }
}

/// The default demo run.
#[must_use]
pub fn run(seed: u64) -> Fig3Result {
    run_with_spray(seed, 0.20, 8)
}

/// The spray-limit ablation: 5 % (the paper's forced cap) vs more generous
/// spraying. Expected shape: success time shrinks (or cycle count drops) as
/// the spray fraction grows.
#[must_use]
pub fn spray_ablation(seed: u64) -> Vec<Fig3Result> {
    [0.05, 0.10, 0.20]
        .into_iter()
        .map(|f| run_with_spray(seed, f, 24))
        .collect()
}

/// Renders one run.
#[must_use]
pub fn render(r: &Fig3Result) -> String {
    format!(
        "Figure 3 / §4.2: end-to-end ext4 indirect-block exploit\n\
         spray limit {:.0}% | success: {} | cycles: {} | flips: {} | corruption-only events: {} | fs-corruption abort: {} | simulated time: {}\n",
        r.spray_fraction * 100.0,
        r.success,
        r.cycles,
        r.total_flips,
        r.corruption_events,
        r.aborted_by_corruption,
        r.time,
    )
}

/// Renders the ablation series.
#[must_use]
pub fn render_ablation(rows: &[Fig3Result]) -> String {
    let mut out = String::from(
        "spray-limit ablation (why the paper's 5% cap inflated its 2h figure)\n\
         spray%  success  cycles  sim-time\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6.0}  {:>7} {:>7}  {}\n",
            r.spray_fraction * 100.0,
            r.success,
            r.cycles,
            r.time
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_leak_succeeds() {
        // Seed chosen so the demo-scale attack converges within its cycle
        // budget (the leak is probabilistic in the manufacturing seed).
        let r = run(1);
        assert!(r.success, "demo should converge: {r:?}");
        assert!(r.total_flips > 0);
        assert!(r.time > SimDuration::ZERO);
    }

    #[test]
    fn lower_spray_fraction_never_beats_higher() {
        let rows = spray_ablation(7);
        // Shape: the most generous spray succeeds at least as fast (in
        // cycles) as the most constrained.
        let c5 = rows[0].cycles;
        let c20 = rows[2].cycles;
        assert!(
            c20 <= c5 || (rows[2].success && !rows[0].success),
            "20% spray ({c20} cycles) should not lose to 5% ({c5} cycles)"
        );
    }
}

// ---- paper-prototype scale ---------------------------------------------------

/// Runs the paper-prototype-scale configuration (§4.1's 1 GiB SSD),
/// printing a progress note to stderr — the run simulates hours of attack
/// time.
fn run_full(seed: u64) -> ssdhammer_cloud::CaseStudyOutcome {
    eprintln!("running the paper-prototype configuration; this simulates hours of attack time...");
    let config = CaseStudyConfig::paper_prototype(seed);
    run_case_study(&config).expect("case study")
}

/// The structured document for the full-scale run (`repro fig3 --full
/// --json`).
#[must_use]
pub fn run_full_json(seed: u64) -> Json {
    let outcome = run_full(seed);
    Json::obj([
        ("success", Json::from(outcome.success)),
        ("cycles", outcome.cycles.to_json()),
        (
            "total_time_secs",
            Json::from(outcome.total_time.as_secs_f64()),
        ),
        ("corruption_events", Json::from(outcome.corruption_events)),
    ])
}

/// The human-readable report for the full-scale run (`repro fig3 --full`).
#[must_use]
pub fn render_full(seed: u64) -> String {
    let outcome = run_full(seed);
    let mut out = format!(
        "paper-prototype case study: success={} cycles={} corruption_events={} simulated_time={}\n",
        outcome.success,
        outcome.cycles.len(),
        outcome.corruption_events,
        outcome.total_time,
    );
    out.push_str("(paper \u{a7}4.2: \"on our testbed this took about two hours\")\n");
    for c in &outcome.cycles {
        out.push_str(&format!(
            "  cycle {:>2}: files={} sites={} flips={} hits={} leaked={}\n",
            c.cycle, c.sprayed_files, c.sites_hammered, c.flips, c.scan_hits, c.leaked_secret
        ));
    }
    out
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro fig3`. `cfg.full` selects the
/// paper-prototype scale; the fast demo also reports the spray-limit
/// ablation in its rendered form.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Scenario;

impl Scenario for Fig3Scenario {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn run(&self, cfg: ScenarioCfg, seed: u64, _threads: usize) -> Json {
        if cfg.full {
            run_full_json(seed)
        } else {
            run(seed).to_json()
        }
    }

    fn render(&self, cfg: ScenarioCfg, seed: u64, _threads: usize) -> String {
        if cfg.full {
            render_full(seed)
        } else {
            let mut out = render(&run(seed));
            out.push_str(&render_ablation(&spray_ablation(seed)));
            out
        }
    }
}
