//! Experiment E5 — **§4.3**: probability of success. Closed form,
//! Monte-Carlo cross-check, and the cumulative-success curve (7 % per
//! cycle, >50 % after 10 cycles with the paper's parameters).

use ssdhammer_core::AttackParams;
use ssdhammer_simkit::json::{Json, ToJson};

/// The reproduced §4.3 numbers.
#[derive(Debug, Clone)]
pub struct Sec43Result {
    /// Closed-form per-cycle probability.
    pub analytic: f64,
    /// Monte-Carlo estimate.
    pub monte_carlo: f64,
    /// Cumulative success after n cycles, n = 1..=max.
    pub cumulative: Vec<f64>,
    /// Cycles needed to exceed 50 %.
    pub cycles_to_half: u32,
}

impl ToJson for Sec43Result {
    fn to_json(&self) -> Json {
        Json::obj([
            ("analytic", Json::from(self.analytic)),
            ("monte_carlo", Json::from(self.monte_carlo)),
            ("cumulative", self.cumulative.to_json()),
            ("cycles_to_half", Json::from(self.cycles_to_half)),
        ])
    }
}

/// Runs the §4.3 reproduction with the paper's illustration parameters on a
/// 1 GiB SSD, single-threaded.
#[must_use]
pub fn run(seed: u64) -> Sec43Result {
    run_with_threads(seed, 1)
}

/// Like [`run`], sharding the Monte-Carlo campaign across `threads` worker
/// threads via `simkit::parallel`. The result — including every bit of the
/// Monte-Carlo estimate — is identical for any thread count; the repro
/// suite's determinism test holds the JSON output to that.
#[must_use]
pub fn run_with_threads(seed: u64, threads: usize) -> Sec43Result {
    let params = AttackParams::paper_example(1 << 18);
    let analytic = params.useful_flip_probability();
    Sec43Result {
        analytic,
        monte_carlo: params.monte_carlo_useful_flip_sharded(400_000, seed, threads),
        cumulative: (1..=12).map(|n| params.cumulative_success(n)).collect(),
        cycles_to_half: params.cycles_for_success(0.5),
    }
}

/// Renders the reproduction.
#[must_use]
pub fn render(r: &Sec43Result) -> String {
    let mut out = format!(
        "§4.3: probability of success (C_a = C_v = PB/2, F_v = C_v/4, F_a = C_a)\n\
         per-cycle useful-flip probability: analytic {:.4} (paper: 7%), Monte-Carlo {:.4}\n\
         cycles to >50%: {} (paper: 10)\n\
         cumulative success:",
        r.analytic, r.monte_carlo, r.cycles_to_half,
    );
    for (i, c) in r.cumulative.iter().enumerate() {
        out.push_str(&format!(" n={}:{:.1}%", i + 1, c * 100.0));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce() {
        let r = run(11);
        assert!(
            (r.analytic - 0.0703).abs() < 0.001,
            "analytic {}",
            r.analytic
        );
        assert!((r.monte_carlo - r.analytic).abs() < 0.003);
        assert_eq!(r.cycles_to_half, 10);
        assert!(r.cumulative[9] > 0.5, "10 cycles: {}", r.cumulative[9]);
        assert!(r.cumulative[8] < 0.5, "9 cycles: {}", r.cumulative[8]);
        // Monotone non-decreasing curve.
        assert!(r.cumulative.windows(2).all(|w| w[1] >= w[0]));
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro prob`.
#[derive(Debug, Clone, Copy)]
pub struct Sec43Scenario;

impl Scenario for Sec43Scenario {
    fn name(&self) -> &'static str {
        "prob"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        run_with_threads(seed, threads).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&run_with_threads(seed, threads))
    }
}
