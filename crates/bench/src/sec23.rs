//! Experiment E7 — **§2.3**: feasibility. "State-of-the-art rowhammering
//! attacks on modern DRAM modules require as few as ~50K row accesses per a
//! 64ms refresh interval, i.e., ~780K accesses per second. Consequently,
//! NVMe interfaces easily allow sufficiently high 4KiB-based I/O rates
//! necessary for a successful rowhammering attack."
//!
//! We measure the DRAM activation rate each controller generation can drive
//! through the FTL and count how many Table 1 module classes fall below it.

use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_nvme::{InterfaceGen, Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::Lba;

/// One feasibility sweep point.
#[derive(Debug, Clone)]
pub struct Sec23Row {
    /// Controller generation.
    pub interface: String,
    /// Peak command rate of the controller, IOPS.
    pub max_iops: f64,
    /// Measured DRAM activation rate at amplification 1, accesses/s.
    pub act_rate: f64,
    /// Table 1 module classes attackable at this rate (of 14).
    pub attackable_modules: usize,
    /// Whether the §2.3 reference threshold (~780 K acc/s) is exceeded.
    pub exceeds_reference: bool,
}

impl ToJson for Sec23Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("interface", Json::str(&*self.interface)),
            ("max_iops", Json::from(self.max_iops)),
            ("act_rate", Json::from(self.act_rate)),
            ("attackable_modules", Json::from(self.attackable_modules)),
            ("exceeds_reference", Json::from(self.exceeds_reference)),
        ])
    }
}

/// The §2.3 reference rate: ~50 K accesses per 64 ms window.
pub const REFERENCE_RATE: f64 = 780_000.0;

fn measure_act_rate(interface: InterfaceGen, seed: u64) -> (f64, f64) {
    let mut config = SsdConfig::test_small(seed);
    config.dram_geometry = DramGeometry::tiny_test();
    config.dram_profile = ModuleProfile::invulnerable();
    config.dram_mapping = MappingKind::Linear;
    config.flash_geometry = FlashGeometry::mib64();
    config.controller.interface = interface;
    let io_cores = config.controller.io_cores;
    let mut ssd = Ssd::build(config);
    // The paper's attacker drives the device from multiple deep queue pairs;
    // one saturated pair per I/O core lifts `max_iops` to the controller's
    // full multi-queue ceiling, which is the rate this feasibility sweep
    // (and Table 1's minimum-rate check) measures against.
    for _ in 0..io_cores {
        let _ = ssd.create_queue_pair(usize::try_from(Ssd::QD_SATURATION).expect("depth"));
    }
    let report = ssd
        .hammer_device_reads(&[Lba(0), Lba(512)], 500_000, 100_000_000.0)
        .expect("hammer");
    (ssd.max_iops(), report.achieved_rate)
}

/// Runs the feasibility sweep across controller generations.
#[must_use]
pub fn run(seed: u64) -> Vec<Sec23Row> {
    let rates: Vec<f64> = ModuleProfile::table1()
        .into_iter()
        .map(|(_, _, p)| f64::from(p.min_flip_rate_kaps) * 1000.0)
        .collect();
    [
        InterfaceGen::Pcie3,
        InterfaceGen::Pcie4,
        InterfaceGen::Pcie5,
    ]
    .into_iter()
    .map(|interface| {
        let (max_iops, act_rate) = measure_act_rate(interface, seed);
        Sec23Row {
            interface: interface.to_string(),
            max_iops,
            act_rate,
            attackable_modules: rates.iter().filter(|&&r| r <= act_rate).count(),
            exceeds_reference: act_rate >= REFERENCE_RATE,
        }
    })
    .collect()
}

/// Renders the sweep.
#[must_use]
pub fn render(rows: &[Sec23Row]) -> String {
    let mut out = String::from(
        "§2.3: feasibility — achievable FTL DRAM activation rate vs required rates\n\
         interface   max IOPS(M)  act-rate(M/s)  attackable Table-1 modules (of 14)  >780K/s?\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>11.2} {:>14.2} {:>35} {:>9}\n",
            r.interface,
            r.max_iops / 1e6,
            r.act_rate / 1e6,
            r.attackable_modules,
            if r.exceeds_reference { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_interfaces_cross_the_feasibility_threshold() {
        let rows = run(1);
        assert_eq!(rows.len(), 3);
        let by_name = |n: &str| rows.iter().find(|r| r.interface.contains(n)).unwrap();
        // §3.1: ~1.5M IOPS on PCIe 4.0, >2M on PCIe 5.0; both exceed 780K/s.
        assert!(by_name("4.0").exceeds_reference);
        assert!(by_name("5.0").exceeds_reference);
        assert!(by_name("5.0").act_rate > 2_000_000.0);
        // Newer interfaces attack at least as many module classes.
        assert!(by_name("5.0").attackable_modules >= by_name("4.0").attackable_modules);
        assert!(by_name("4.0").attackable_modules >= by_name("3.0").attackable_modules);
        // Even PCIe 3.0 reaches the most vulnerable modern modules (150K/s).
        assert!(by_name("3.0").attackable_modules >= 1);
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro feasibility`.
#[derive(Debug, Clone, Copy)]
pub struct Sec23Scenario;

impl Scenario for Sec23Scenario {
    fn name(&self) -> &'static str {
        "feasibility"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> Json {
        run(seed).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> String {
        render(&run(seed))
    }
}
