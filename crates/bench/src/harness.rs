//! A minimal wall-clock bench harness.
//!
//! The benches under `benches/` use `harness = false`, so each is a plain
//! binary with a `main`. This module provides the shared timing loop:
//! a short warmup, a fixed number of measured samples, and a one-line
//! min/mean/max report. It is intentionally tiny — no statistics beyond
//! what a human needs to spot a regression — because the workspace builds
//! without external crates.
//!
//! All host-clock access lives in the [`wallclock`] submodule. That is the
//! one sanctioned `std::time::Instant` user outside `simkit` (lint rule D1's
//! allowlist points here): the timings it produces are printed for humans
//! and never feed back into simulated state, so they cannot perturb a
//! deterministic run.

use std::hint::black_box;

/// The wall-clock-only reporting path.
///
/// Everything measured against the host clock funnels through this module,
/// so the D1 allowlist entry for `harness.rs` has a single, auditable
/// surface. The rest of the harness consumes the returned plain seconds and
/// does arithmetic and formatting only.
pub mod wallclock {
    use std::time::Instant;

    /// Runs `f` once and returns its wall-clock duration in seconds.
    ///
    /// The only purpose of the value is human-readable reporting; it must
    /// never be fed into simulated state.
    pub fn time_once<T>(f: &mut impl FnMut() -> T) -> f64 {
        let t0 = Instant::now();
        std::hint::black_box(f());
        t0.elapsed().as_secs_f64()
    }
}

/// Times `f` over `samples` measured runs (after one warmup run) and prints
/// a `group/name: min/mean/max` line. Returns the mean seconds per run.
pub fn bench<T>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(samples > 0, "need at least one sample");
    black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        times.push(wallclock::time_once(&mut f));
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{group}/{name}: {} samples, min {} mean {} max {}",
        samples,
        human(min),
        human(mean),
        human(max)
    );
    mean
}

/// Renders seconds with a unit matched to the magnitude.
fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}us", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports_mean() {
        let mut calls = 0u32;
        let mean = bench("t", "noop", 3, || calls += 1);
        assert_eq!(calls, 4, "one warmup + three samples");
        assert!(mean >= 0.0);
    }

    #[test]
    fn wallclock_times_are_nonnegative_and_ordered() {
        let mut fast = || 1 + 1;
        let quick = wallclock::time_once(&mut fast);
        assert!(quick >= 0.0);
        let mut slow = || {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        };
        let longer = wallclock::time_once(&mut slow);
        assert!(longer >= 0.0);
    }

    #[test]
    fn human_units() {
        assert_eq!(human(2.5), "2.500s");
        assert_eq!(human(0.002), "2.000ms");
        assert_eq!(human(3e-6), "3.000us");
        assert_eq!(human(5e-9), "5.0ns");
    }
}
