//! The uniform scenario API: every experiment module exposes one entry
//! point with the same shape, so callers (the `repro` binary's subcommand
//! registry, the bench harness, tests) can drive any experiment without
//! knowing its module-specific function zoo.
//!
//! A scenario is a unit struct implementing [`Scenario`]; the impl lives in
//! the experiment's own module next to the functions it wraps. `run`
//! returns the structured result as [`Json`] — the same document `repro
//! <name> --json` prints — and `render` returns the human-readable report.
//! Both are deterministic for a fixed `(cfg, seed)`: thread count shards
//! work but never changes output bytes.

use std::path::PathBuf;

use ssdhammer_simkit::json::Json;

/// Options shared by every scenario. Scenarios ignore fields that do not
/// apply to them (`fig3` and `torture` distinguish `full`; the
/// checkpoint/resume/abort knobs drive supervised campaigns — `torture`
/// today).
#[derive(Debug, Clone, Default)]
pub struct ScenarioCfg {
    /// Run the paper-prototype-scale configuration where one exists
    /// (fig3's 1 GiB case study, torture's sampling schedule) instead of
    /// the fast demo.
    pub full: bool,
    /// Persist completed campaign shards to this checkpoint file
    /// (`--checkpoint`).
    pub checkpoint: Option<PathBuf>,
    /// Restore completed shards from the checkpoint before running
    /// (`--resume`).
    pub resume: bool,
    /// Stop launching new shards after this many (`--abort-after`; CI's
    /// simulated kill for checkpoint/resume round-trips).
    pub abort_after: Option<usize>,
    /// Episode-count override for the fuzz campaign (`--soak N`).
    pub soak: Option<usize>,
    /// Replay a directory of persisted fuzz corpus cases instead of
    /// soaking (`--replay DIR`).
    pub replay: Option<PathBuf>,
}

/// A reproducible experiment with a uniform entry signature.
///
/// `Sync` is a supertrait so `&'static dyn Scenario` can sit in the
/// `repro` binary's static command table.
pub trait Scenario: Sync {
    /// The canonical experiment name — the `repro` subcommand.
    fn name(&self) -> &'static str;

    /// Runs the experiment and returns its structured result document.
    /// Byte-identical for a fixed `(cfg, seed)` regardless of `threads`.
    fn run(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> Json;

    /// Runs the experiment and returns the human-readable report (the
    /// text `repro <name>` prints).
    fn render(&self, cfg: ScenarioCfg, seed: u64, threads: usize) -> String;
}
