//! Experiment E3 — **Figure 2**: the two testbed topologies.
//!
//! (b) "On our existing testbed, we need a helper attacker VM to reach a
//! high-enough access rate to make rowhammering possible"; (a) "in the
//! future, we foresee that such assistance will be unneeded."
//!
//! We sweep {setup} × {DRAM module}: the paper's testbed DDR3 (flips at
//! 3 M acc/s — unreachable from the direct path, reachable with the helper's
//! 5× amplification) and a modern module (DDR4-new 2020, 313 K acc/s —
//! reachable directly).

use ssdhammer_core::{find_attack_sites, AttackPipeline};
use ssdhammer_dram::{DramGeometry, MappingKind, ModuleProfile};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_nvme::{Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::SimDuration;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// "direct (a)" or "helper VM (b)".
    pub setup: String,
    /// Module label.
    pub module: String,
    /// Per-request activation amplification.
    pub amplification: u32,
    /// Achieved DRAM activation rate, accesses/s.
    pub act_rate: f64,
    /// The module's minimal flipping rate, accesses/s.
    pub needed_rate: f64,
    /// Bitflips observed.
    pub flips: usize,
    /// Host-visible redirections observed.
    pub redirections: usize,
}

impl ToJson for Fig2Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("setup", Json::str(&*self.setup)),
            ("module", Json::str(&*self.module)),
            ("amplification", Json::from(self.amplification)),
            ("act_rate", Json::from(self.act_rate)),
            ("needed_rate", Json::from(self.needed_rate)),
            ("flips", Json::from(self.flips)),
            ("redirections", Json::from(self.redirections)),
        ])
    }
}

fn sweep_point(profile: ModuleProfile, amplification: u32, seed: u64) -> (f64, usize, usize) {
    let mut p = profile;
    // Structure-focused sweep: every row carries enough weak cells of both
    // orientations that outcomes depend on the achieved *rate*, not on
    // whether a particular cell's orientation matches the stored bit
    // (flips are data-dependent; see the DRAM crate docs).
    p.row_vulnerable_prob = 1.0;
    p.weak_cells_per_row = 24.0;
    p.threshold_spread = 0.3;
    let mut config = SsdConfig::test_small(seed);
    config.dram_geometry = DramGeometry::tiny_test();
    config.dram_profile = p;
    config.dram_mapping = MappingKind::Linear;
    config.flash_geometry = FlashGeometry::mib64();
    config.ftl.hammer_amplification = amplification;
    let mut ssd = Ssd::build(config);
    let site = find_attack_sites(ssd.ftl(), 1).pop().expect("site");
    let outcome = AttackPipeline::default()
        .with_rate(10_000_000.0) // ask for more than the interface can do; it clamps
        .with_duration(SimDuration::from_millis(500))
        .with_sites(vec![site])
        .run(&mut ssd)
        .expect("hammer");
    (
        outcome.report.achieved_rate,
        outcome.report.flips.len(),
        outcome.redirections().len(),
    )
}

/// Runs the Figure 2 sweep.
#[must_use]
pub fn run(seed: u64) -> Vec<Fig2Row> {
    let modules = [
        ("testbed DDR3 (3M acc/s)", ModuleProfile::testbed_ddr3()),
        ("DDR4 new 2020 (313K acc/s)", ModuleProfile::ddr4_new_2020()),
    ];
    let setups = [("direct (a)", 1u32), ("helper VM (b)", 5u32)];
    let mut rows = Vec::new();
    for (mname, module) in &modules {
        for (sname, amp) in &setups {
            let (act_rate, flips, redirections) = sweep_point(module.clone(), *amp, seed);
            rows.push(Fig2Row {
                setup: (*sname).to_owned(),
                module: (*mname).to_owned(),
                amplification: *amp,
                act_rate,
                needed_rate: f64::from(module.min_flip_rate_kaps) * 1000.0,
                flips,
                redirections,
            });
        }
    }
    rows
}

/// Renders the sweep as a table.
#[must_use]
pub fn render(rows: &[Fig2Row]) -> String {
    let mut out = String::from(
        "Figure 2: direct vs helper-VM setups\n\
         setup          module                       amp  act-rate(M/s)  needed(M/s)  flips  redirections\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<28} {:>3} {:>14.2} {:>12.2} {:>6} {:>13}\n",
            r.setup,
            r.module,
            r.amplification,
            r.act_rate / 1e6,
            r.needed_rate / 1e6,
            r.flips,
            r.redirections,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_vm_is_needed_on_the_testbed_but_not_in_the_future() {
        let rows = run(5);
        let find = |setup: &str, module: &str| {
            rows.iter()
                .find(|r| r.setup.starts_with(setup) && r.module.starts_with(module))
                .unwrap()
        };
        // Paper testbed: direct path too slow, helper VM flips.
        assert_eq!(find("direct", "testbed").flips, 0);
        assert!(find("helper", "testbed").flips > 0);
        // Modern module: direct path suffices (Figure 2 (a)'s future).
        assert!(find("direct", "DDR4 new").flips > 0);
        // Rates are consistent with the outcomes.
        for r in &rows {
            let flippable = r.act_rate > r.needed_rate;
            assert_eq!(
                r.flips > 0,
                flippable,
                "{} / {}: act {:.2e} vs needed {:.2e}",
                r.setup,
                r.module,
                r.act_rate,
                r.needed_rate
            );
        }
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro fig2`.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Scenario;

impl Scenario for Fig2Scenario {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> Json {
        run(seed).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, _threads: usize) -> String {
        render(&run(seed))
    }
}
