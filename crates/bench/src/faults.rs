//! Fault-injection scenario runner (`repro -- faults`): exercises the
//! deterministic fault plane through the whole recovery stack — read-retry
//! ladder, ECC escalation, bad-block remapping, journal replay after a
//! power cut, and controller timeout/retry — and reports, per scenario, how
//! many faults were injected, how many the stack recovered, and how many
//! surfaced as (honest) failures.
//!
//! Scenarios are sharded across a [`Campaign`], so the output is
//! bit-identical for any `--threads` value.

use ssdhammer_dram::{DramGeometry, DramModule, MappingKind, ModuleProfile};
use ssdhammer_flash::{FlashArray, FlashGeometry};
use ssdhammer_ftl::{Ftl, FtlConfig, FtlError};
use ssdhammer_nvme::{Command, ControllerConfig, NsId, RetryPolicy, Ssd, SsdConfig};
use ssdhammer_simkit::faultplane::{FaultPlane, FaultPlaneConfig, FaultSpec};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::parallel::Campaign;
use ssdhammer_simkit::{Lba, SimClock, BLOCK_SIZE};

/// One fault-injection scenario's outcome.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Faults the plane injected.
    pub injected: u64,
    /// Faults the recovery stack absorbed (the host saw success).
    pub recovered: u64,
    /// Faults that surfaced to the host as errors (honest failures).
    pub failed: u64,
    /// Whether the device ended the scenario degraded to read-only.
    pub degraded: bool,
}

impl ToJson for FaultRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::from(self.scenario)),
            ("injected", Json::from(self.injected)),
            ("recovered", Json::from(self.recovered)),
            ("failed", Json::from(self.failed)),
            ("degraded", Json::from(self.degraded)),
        ])
    }
}

fn tiny_ftl(seed: u64, config: FtlConfig, faults: &FaultPlaneConfig) -> Ftl {
    let clock = SimClock::new();
    let dram = DramModule::builder(DramGeometry::tiny_test())
        .profile(ModuleProfile::invulnerable())
        .mapping(MappingKind::Linear)
        .seed(seed)
        .without_timing()
        .build(clock.clone());
    // Flash seed 1: no factory-bad blocks in the tiny geometry, so every
    // grown-bad block in the scenario is fault-injected.
    let mut nand = FlashArray::new(FlashGeometry::tiny_test(), clock, 1);
    nand.set_fault_plane(FaultPlane::new(seed, faults));
    Ftl::new(dram, nand, config).expect("tiny FTL assembly")
}

fn fresh_dram(seed: u64) -> DramModule {
    DramModule::builder(DramGeometry::tiny_test())
        .profile(ModuleProfile::invulnerable())
        .mapping(MappingKind::Linear)
        .seed(seed)
        .without_timing()
        .build(SimClock::new())
}

/// Transient media read failures absorbed by the read-retry ladder.
fn read_retry(seed: u64) -> FaultRow {
    let faults =
        FaultPlaneConfig::new().with_site("flash.read_fail", FaultSpec::with_probability(0.5));
    let mut ftl = tiny_ftl(seed, FtlConfig::default().with_read_retry_max(8), &faults);
    let mut buf = vec![0u8; BLOCK_SIZE];
    let mut recovered = 0u64;
    let mut failed = 0u64;
    for lba in 0..200u64 {
        ftl.write(Lba(lba % 100), &buf).expect("write");
    }
    for lba in 0..100u64 {
        match ftl.read(Lba(lba), &mut buf) {
            Ok(_) => recovered += 1,
            Err(_) => failed += 1,
        }
    }
    FaultRow {
        scenario: "read-retry ladder",
        injected: ftl.fault_plane().fired("flash.read_fail"),
        recovered,
        failed,
        degraded: ftl.is_read_only(),
    }
}

/// Persistent read failures escalating into SEC-DED ECC classification.
fn ecc_escalation(seed: u64) -> FaultRow {
    let faults = FaultPlaneConfig::new().with_site("flash.read_fail", FaultSpec::always());
    let mut ftl = tiny_ftl(seed, FtlConfig::default().with_read_retry_max(0), &faults);
    let buf = vec![0x3Cu8; BLOCK_SIZE];
    for lba in 0..100u64 {
        ftl.write(Lba(lba), &buf).expect("write");
    }
    let mut out = vec![0u8; BLOCK_SIZE];
    for lba in 0..100u64 {
        let _ = ftl.read(Lba(lba), &mut out);
    }
    let t = ftl.telemetry();
    FaultRow {
        scenario: "ECC escalation",
        injected: ftl.fault_plane().fired("flash.read_fail"),
        recovered: t.ecc_corrected,
        failed: t.uncorrectable_reads + t.silent_corruptions,
        degraded: ftl.is_read_only(),
    }
}

/// Program failures triggering grown-bad-block remaps.
fn bad_block_remap(seed: u64) -> FaultRow {
    // Each program failure retires a whole block, so the tiny 16-block
    // array tolerates only a handful of grown-bad blocks before filling up;
    // cap the fires to stay within its spare capacity.
    let faults = FaultPlaneConfig::new().with_site(
        "flash.program_fail",
        FaultSpec::with_probability(0.02).with_max_fires(3),
    );
    let mut ftl = tiny_ftl(seed, FtlConfig::default().with_remap_budget(16), &faults);
    let buf = vec![0xA5u8; BLOCK_SIZE];
    let mut failed = 0u64;
    for round in 0..6u64 {
        for lba in 0..100u64 {
            match ftl.write(Lba(lba), &buf) {
                Ok(_) => {}
                Err(FtlError::ReadOnly) => failed += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let _ = round;
    }
    FaultRow {
        scenario: "bad-block remap",
        injected: ftl.fault_plane().fired("flash.program_fail"),
        recovered: ftl.telemetry().bad_block_remaps,
        failed,
        degraded: ftl.is_read_only(),
    }
}

/// A mid-workload power cut; the L2P journal replays on remount.
fn journal_replay(seed: u64) -> FaultRow {
    // Checkpoint every entry: the journal is durable up to the very
    // mutation the power cut lands on, so no trim can resurrect. (Larger
    // intervals trade that worst-case window for fewer journal writes.)
    let config = FtlConfig::default()
        .with_journal_checkpoint_every(1)
        .with_journal_blocks(2);
    let faults = FaultPlaneConfig::new()
        .with_site("ftl.power_loss", FaultSpec::always().with_window(70, 71));
    let mut ftl = tiny_ftl(seed, config, &faults);
    let buf = vec![0x11u8; BLOCK_SIZE];
    let mut trimmed = Vec::new();
    let mut cut = false;
    'workload: for round in 0..2u64 {
        for lba in 0..50u64 {
            match ftl.write(Lba(lba), &buf) {
                // A rewrite of a previously trimmed LBA maps it again.
                Ok(_) => trimmed.retain(|&t| t != lba),
                Err(FtlError::PowerLoss) => {
                    cut = true;
                    break 'workload;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
            if round == 0 && lba % 5 == 0 {
                match ftl.trim(Lba(lba)) {
                    Ok(()) => trimmed.push(lba),
                    Err(FtlError::PowerLoss) => {
                        cut = true;
                        break 'workload;
                    }
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }
    }
    assert!(cut, "power cut must fire inside the workload");
    let (_lost_dram, nand) = ftl.into_parts();
    let recovered_ftl = Ftl::recover(fresh_dram(seed ^ 1), nand, config).expect("remount");
    // Trims checkpointed before the cut must not resurrect. (Entries still
    // buffered in lost DRAM at the cut are honest, bounded losses.)
    let replayed = recovered_ftl.telemetry().journal_replayed;
    let resurrected = trimmed
        .iter()
        .filter(|&&lba| {
            recovered_ftl
                .peek_mapping(Lba(lba))
                .expect("peek")
                .is_some()
        })
        .count() as u64;
    FaultRow {
        scenario: "power-loss replay",
        injected: 1,
        recovered: replayed,
        failed: resurrected,
        degraded: recovered_ftl.is_read_only(),
    }
}

/// Controller command timeouts absorbed by bounded retry-with-backoff.
fn nvme_timeout(seed: u64) -> FaultRow {
    let faults =
        FaultPlaneConfig::new().with_site("nvme.timeout", FaultSpec::with_probability(0.4));
    let retry = RetryPolicy::default().with_max_retries(4);
    let mut ssd = Ssd::build(
        SsdConfig::test_small(seed)
            .with_fault_plane(faults)
            .with_controller(ControllerConfig::default().with_retry(retry)),
    );
    let ns = ssd.create_namespace(256).expect("namespace");
    let qp = ssd.create_queue_pair(32);
    let mut failed = 0u64;
    let mut recovered = 0u64;
    let mut completions = Vec::with_capacity(32);
    for round in 0..4u64 {
        let cmds: Vec<Command> = (0..32u64).map(|i| write_cmd(ns, i, round as u8)).collect();
        ssd.submit_batch(qp, &cmds).expect("submit");
        ssd.process(qp).expect("process");
        ssd.drain_completions_into(qp, &mut completions)
            .expect("drain");
        for c in completions.drain(..) {
            if c.is_ok() {
                recovered += 1;
            } else {
                failed += 1;
            }
        }
    }
    let snap = ssd.snapshot_telemetry();
    FaultRow {
        scenario: "nvme timeout/retry",
        injected: snap.counter("nvme.timeouts").unwrap_or(0),
        recovered,
        failed,
        degraded: false,
    }
}

fn write_cmd(ns: NsId, lba: u64, fill: u8) -> Command {
    Command::Write {
        ns,
        lba: Lba(lba),
        data: vec![fill; BLOCK_SIZE].into_boxed_slice(),
    }
}

/// Runs every fault scenario single-threaded.
#[must_use]
pub fn run(seed: u64) -> Vec<FaultRow> {
    run_with_threads(seed, 1)
}

/// Like [`run`], sharding scenarios across `threads` workers; output is
/// bit-identical for any thread count.
#[must_use]
pub fn run_with_threads(seed: u64, threads: usize) -> Vec<FaultRow> {
    type Scenario = fn(u64) -> FaultRow;
    const SCENARIOS: [Scenario; 5] = [
        read_retry,
        ecc_escalation,
        bad_block_remap,
        journal_replay,
        nvme_timeout,
    ];
    Campaign::new(seed)
        .with_tag("faults")
        .with_threads(threads)
        .run(SCENARIOS.len(), |trial| SCENARIOS[trial.index](trial.seed))
}

/// Renders the scenario table.
#[must_use]
pub fn render(rows: &[FaultRow]) -> String {
    let mut out = String::from(
        "fault-injection scenarios: deterministic fault plane vs the recovery stack\n\
         scenario            injected  recovered  failed  degraded\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<19} {:>8}  {:>9}  {:>6}  {}\n",
            r.scenario,
            r.injected,
            r.recovered,
            r.failed,
            if r.degraded { "read-only" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_inject_and_mostly_recover() {
        let rows = run(7);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.injected > 0, "{}: no faults injected", r.scenario);
        }
        let ladder = &rows[0];
        assert_eq!(ladder.failed, 0, "retry ladder absorbs p=0.5");
        let replay = &rows[3];
        assert_eq!(replay.failed, 0, "no trims resurrect");
        assert!(replay.recovered > 0, "journal entries replayed");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let json = |threads| run_with_threads(7, threads).to_json().to_string();
        assert_eq!(json(1), json(4));
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro faults`.
#[derive(Debug, Clone, Copy)]
pub struct FaultsScenario;

impl Scenario for FaultsScenario {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        run_with_threads(seed, threads).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&run_with_threads(seed, threads))
    }
}
