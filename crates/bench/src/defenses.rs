//! Defense-in-depth campaign (`repro -- defenses`): the Figure 1 attack
//! primitive re-run against each layer of the integrity plane — no defense,
//! TRR, PARA, L2P integrity codes (detect and correct), and the background
//! patrol scrubber — reporting per configuration the **attack success
//! probability** (fraction of trials ending in at least one *silent*
//! mapping redirection) alongside physical flips, loud failures, and
//! repairs.
//!
//! The distinction the table turns on: a defense succeeds either by
//! preventing flips (TRR, PARA), by converting silent redirections into
//! loud, typed failures (L2P-Detect), or by repairing entries before the
//! host consumes them (L2P-Correct, scrubber). Only silent redirections
//! are usable by the paper's exploit chain.
//!
//! Trials are sharded across a [`Campaign`], so the output is bit-identical
//! for any `--threads` value.

use ssdhammer_core::{find_attack_sites, AttackPipeline};
use ssdhammer_dram::{
    DramGeneration, DramGeometry, MappingKind, ModuleProfile, ParaConfig, TrrConfig,
};
use ssdhammer_flash::FlashGeometry;
use ssdhammer_ftl::{FtlConfig, IntegrityMode};
use ssdhammer_nvme::{ScrubberConfig, Ssd, SsdConfig};
use ssdhammer_simkit::json::{Json, ToJson};
use ssdhammer_simkit::parallel::Campaign;
use ssdhammer_simkit::SimDuration;

/// Independent attack trials per defense configuration.
const TRIALS: usize = 3;

/// Aggregated outcome of all trials against one defense configuration.
#[derive(Debug, Clone)]
pub struct DefenseRow {
    /// Defense label.
    pub defense: &'static str,
    /// Attack trials run.
    pub trials: u64,
    /// Trials that ended with at least one silent redirection.
    pub successes: u64,
    /// `successes / trials` — the attack success probability.
    pub success_probability: f64,
    /// Physical bitflips across all trials.
    pub flips: u64,
    /// Victim entries silently redirected (no error surfaced).
    pub silent_redirections: u64,
    /// Victim entries that failed loudly (typed integrity/ECC error).
    pub loud_failures: u64,
    /// Entries repaired by ECC, the integrity plane, or the scrubber.
    pub repairs: u64,
    /// Trials that ended with the device degraded to read-only.
    pub degraded: u64,
}

impl ToJson for DefenseRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("defense", Json::from(self.defense)),
            ("trials", Json::from(self.trials)),
            ("successes", Json::from(self.successes)),
            ("success_probability", Json::from(self.success_probability)),
            ("flips", Json::from(self.flips)),
            ("silent_redirections", Json::from(self.silent_redirections)),
            ("loud_failures", Json::from(self.loud_failures)),
            ("repairs", Json::from(self.repairs)),
            ("degraded", Json::from(self.degraded)),
        ])
    }
}

/// One trial's raw counts (summed into a [`DefenseRow`]).
#[derive(Debug, Clone, Copy, Default)]
struct TrialOutcome {
    flips: u64,
    silent: u64,
    loud: u64,
    repairs: u64,
    degraded: bool,
}

/// Deterministically vulnerable DDR4: every row flippable, so a trial's
/// outcome is decided by the defense, not by profile sampling.
fn demo_profile() -> ModuleProfile {
    let mut p = ModuleProfile::from_min_rate("demo DDR4", DramGeneration::Ddr4, 2020, 100);
    p.row_vulnerable_prob = 1.0;
    p.weak_cells_per_row = 8.0;
    p
}

/// A flash geometry small enough that the tiny test DRAM holds both the
/// 4 Ki-entry L2P table (16 KiB) and a Correct-mode integrity plane
/// (24 KiB). Shared by every row so the configurations differ only in
/// their defenses.
fn small_flash() -> FlashGeometry {
    FlashGeometry {
        blocks_per_plane: 32,
        ..FlashGeometry::tiny_test()
    }
}

fn base_config(seed: u64) -> SsdConfig {
    SsdConfig::test_small(seed)
        .with_dram_geometry(DramGeometry::tiny_test())
        .with_dram_profile(demo_profile())
        .with_dram_mapping(MappingKind::Linear)
        .with_flash_geometry(small_flash())
}

/// The six defense configurations of the matrix, in report order.
fn configure(defense: usize, seed: u64) -> (&'static str, SsdConfig) {
    match defense {
        0 => ("no defense", base_config(seed)),
        1 => ("TRR", base_config(seed).with_trr(TrrConfig::default())),
        2 => (
            "PARA",
            base_config(seed).with_para(ParaConfig {
                refresh_probability: 0.05,
            }),
        ),
        3 => (
            "L2P-Detect",
            base_config(seed).with_ftl(FtlConfig::default().with_integrity(IntegrityMode::Detect)),
        ),
        4 => (
            "L2P-Correct",
            base_config(seed).with_ftl(FtlConfig::default().with_integrity(IntegrityMode::Correct)),
        ),
        _ => (
            "scrubber + L2P-Correct",
            base_config(seed)
                .with_ftl(FtlConfig::default().with_integrity(IntegrityMode::Correct))
                .with_scrubber(ScrubberConfig::default()),
        ),
    }
}

/// Runs one Figure 1 primitive trial against `config`. The pipeline's
/// victim stage classifies every mapping change: silent (usable by the
/// exploit) vs loud (typed failure the host observes).
fn attack_trial(config: SsdConfig) -> TrialOutcome {
    let mut ssd = Ssd::build(config);
    let Some(site) = find_attack_sites(ssd.ftl(), 4).first().cloned() else {
        return TrialOutcome::default();
    };
    let outcome = AttackPipeline::default()
        .with_rate(1_000_000.0)
        .with_duration(SimDuration::from_millis(500))
        .with_sites(vec![site])
        .run(&mut ssd)
        .expect("hammer");
    let log = ssd.health_log();
    TrialOutcome {
        flips: outcome.report.flips.len() as u64,
        silent: outcome.silent_count() as u64,
        loud: outcome.loud_count() as u64,
        repairs: log.scrub_repairs + log.integrity_repaired,
        degraded: log.read_only,
    }
}

/// Runs the full matrix single-threaded.
#[must_use]
pub fn run(seed: u64) -> Vec<DefenseRow> {
    run_with_threads(seed, 1)
}

/// Like [`run`], sharding (defense, trial) pairs across `threads` workers;
/// output is bit-identical for any thread count.
#[must_use]
pub fn run_with_threads(seed: u64, threads: usize) -> Vec<DefenseRow> {
    const DEFENSES: usize = 6;
    let outcomes: Vec<(usize, &'static str, TrialOutcome)> = Campaign::new(seed)
        .with_tag("defenses")
        .with_threads(threads)
        .run(DEFENSES * TRIALS, |trial| {
            let defense = trial.index / TRIALS;
            let (label, config) = configure(defense, trial.seed);
            (defense, label, attack_trial(config))
        });
    let mut rows: Vec<DefenseRow> = Vec::with_capacity(DEFENSES);
    for (defense, label, t) in outcomes {
        if rows.len() <= defense {
            rows.push(DefenseRow {
                defense: label,
                trials: 0,
                successes: 0,
                success_probability: 0.0,
                flips: 0,
                silent_redirections: 0,
                loud_failures: 0,
                repairs: 0,
                degraded: 0,
            });
        }
        let row = &mut rows[defense];
        row.trials += 1;
        row.successes += u64::from(t.silent > 0);
        row.flips += t.flips;
        row.silent_redirections += t.silent;
        row.loud_failures += t.loud;
        row.repairs += t.repairs;
        row.degraded += u64::from(t.degraded);
    }
    for row in &mut rows {
        row.success_probability = if row.trials > 0 {
            row.successes as f64 / row.trials as f64
        } else {
            0.0
        };
    }
    rows
}

/// Renders the matrix.
#[must_use]
pub fn render(rows: &[DefenseRow]) -> String {
    let mut out = String::from(
        "defense-in-depth: Figure 1 primitive vs the integrity plane\n\
         defense                 P(success)  flips  silent  loud  repairs  degraded\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<23} {:>10.2} {:>6} {:>7} {:>5} {:>8} {:>9}\n",
            r.defense,
            r.success_probability,
            r.flips,
            r.silent_redirections,
            r.loud_failures,
            r.repairs,
            r.degraded,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_separates_the_defenses() {
        let rows = run(7);
        assert_eq!(rows.len(), 6);
        let get = |name: &str| rows.iter().find(|r| r.defense.starts_with(name)).unwrap();
        // Undefended, the attack succeeds every trial.
        let base = get("no defense");
        assert!(base.success_probability > 0.99, "{base:?}");
        assert!(base.flips > 0 && base.silent_redirections > 0);
        // TRR and PARA stop double-sided hammering before flips occur.
        assert_eq!(get("TRR").success_probability, 0.0);
        assert_eq!(get("PARA").success_probability, 0.0);
        // Detect: flips still land, but every consumed corruption is loud.
        let detect = get("L2P-Detect");
        assert_eq!(detect.success_probability, 0.0, "{detect:?}");
        assert!(detect.flips > 0);
        assert!(detect.loud_failures > 0);
        // Correct: flips land and are repaired; nothing silent, nothing
        // loud, no degradation.
        let correct = get("L2P-Correct");
        assert_eq!(correct.success_probability, 0.0, "{correct:?}");
        assert!(correct.flips > 0);
        assert!(correct.repairs > 0);
        assert_eq!(correct.silent_redirections, 0);
        // Scrubber on top: still blocked, with patrol repairs landing
        // during the burst.
        let scrub = get("scrubber");
        assert_eq!(scrub.success_probability, 0.0, "{scrub:?}");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let json = |threads| run_with_threads(7, threads).to_json().to_string();
        assert_eq!(json(1), json(4));
    }
}

// ---- scenario entry ---------------------------------------------------------

use crate::scenario::{Scenario, ScenarioCfg};

/// [`Scenario`] wrapper: `repro defenses`.
#[derive(Debug, Clone, Copy)]
pub struct DefensesScenario;

impl Scenario for DefensesScenario {
    fn name(&self) -> &'static str {
        "defenses"
    }

    fn run(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> Json {
        run_with_threads(seed, threads).to_json()
    }

    fn render(&self, _cfg: ScenarioCfg, seed: u64, threads: usize) -> String {
        render(&run_with_threads(seed, threads))
    }
}
