//! The deterministic parallel campaign runner at scale: shards a large
//! Monte-Carlo campaign across worker threads, prints per-thread-count
//! timings, and reports the speedup of 4 workers over 1. The estimates are
//! asserted bit-identical first — the whole point of the runner is that
//! threads buy wall-clock time and nothing else.

use ssdhammer_bench::harness;
use ssdhammer_core::AttackParams;

const TRIALS: u32 = 40_000_000;

fn main() {
    let params = AttackParams::paper_example(1 << 18);

    let baseline = params.monte_carlo_useful_flip_sharded(TRIALS, 11, 1);
    for threads in [2, 4, 8] {
        let p = params.monte_carlo_useful_flip_sharded(TRIALS, 11, threads);
        assert_eq!(
            p.to_bits(),
            baseline.to_bits(),
            "estimate diverged at {threads} threads"
        );
    }
    println!("40M-trial Monte-Carlo estimate: {baseline:.6} (identical at 1/2/4/8 threads)\n");

    let t1 = harness::bench("campaign", "mc_40m_threads_1", 5, || {
        params.monte_carlo_useful_flip_sharded(TRIALS, 11, 1)
    });
    let t4 = harness::bench("campaign", "mc_40m_threads_4", 5, || {
        params.monte_carlo_useful_flip_sharded(TRIALS, 11, 4)
    });
    harness::bench("campaign", "mc_40m_threads_8", 5, || {
        params.monte_carlo_useful_flip_sharded(TRIALS, 11, 8)
    });
    println!("\nspeedup at 4 threads: {:.2}x", t1 / t4);
}
