//! E1 / Table 1: prints the reproduced table, then benchmarks the
//! minimal-flip-rate search for one representative module.

use ssdhammer_bench::{harness, table1};
use ssdhammer_dram::{
    hammer::measure_min_flip_rate, DramGeometry, DramModule, MappingKind, ModuleProfile,
};
use ssdhammer_simkit::SimClock;

fn main() {
    let rows = table1::run(7);
    println!("\n{}", table1::render(&rows));

    harness::bench("table1", "min_rate_search_ddr4_new_2020", 10, || {
        let factory = || {
            DramModule::builder(DramGeometry::tiny_test())
                .profile(ModuleProfile::ddr4_new_2020())
                .mapping(MappingKind::Linear)
                .seed(7)
                .without_timing()
                .build(SimClock::new())
        };
        measure_min_flip_rate(&factory, 50_000.0, 20_000_000.0, 1, 0.05)
    });
}
