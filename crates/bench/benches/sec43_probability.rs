//! E5 / §4.3: prints the probability reproduction, then benchmarks the
//! Monte-Carlo estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::sec43;
use ssdhammer_core::AttackParams;

fn bench(c: &mut Criterion) {
    let r = sec43::run(11);
    println!("\n{}", sec43::render(&r));

    let params = AttackParams::paper_example(1 << 18);
    let mut group = c.benchmark_group("sec43");
    group.bench_function("monte_carlo_100k", |b| {
        b.iter(|| params.monte_carlo_useful_flip(100_000, 11));
    });
    group.bench_function("closed_form", |b| {
        b.iter(|| params.useful_flip_probability());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
