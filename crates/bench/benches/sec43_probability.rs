//! E5 / §4.3: prints the probability reproduction, then benchmarks the
//! Monte-Carlo estimator.

use ssdhammer_bench::{harness, sec43};
use ssdhammer_core::AttackParams;

fn main() {
    let r = sec43::run(11);
    println!("\n{}", sec43::render(&r));

    let params = AttackParams::paper_example(1 << 18);
    harness::bench("sec43", "monte_carlo_100k", 20, || {
        params.monte_carlo_useful_flip(100_000, 11)
    });
    harness::bench("sec43", "closed_form", 100, || {
        params.useful_flip_probability()
    });
}
