//! E3 / Figure 2: prints the setup sweep, then benchmarks one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::fig2;

fn bench(c: &mut Criterion) {
    let rows = fig2::run(5);
    println!("\n{}", fig2::render(&rows));

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("setup_sweep", |b| {
        b.iter(|| fig2::run(5));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
