//! E3 / Figure 2: prints the setup sweep, then benchmarks one sweep point.

use ssdhammer_bench::{fig2, harness};

fn main() {
    let rows = fig2::run(5);
    println!("\n{}", fig2::render(&rows));

    harness::bench("fig2", "setup_sweep", 10, || fig2::run(5));
}
