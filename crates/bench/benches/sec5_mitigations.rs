//! E6 / §5: prints the mitigation matrix, then benchmarks the
//! baseline-vs-ECC attack runs.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::sec5;

fn bench(c: &mut Criterion) {
    let rows = sec5::run(42);
    println!("\n{}", sec5::render(&rows));

    let mut group = c.benchmark_group("sec5");
    group.sample_size(10);
    group.bench_function("mitigation_matrix", |b| {
        b.iter(|| sec5::run(42));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
