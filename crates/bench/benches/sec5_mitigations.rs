//! E6 / §5: prints the mitigation matrix, then benchmarks the
//! baseline-vs-ECC attack runs.

use ssdhammer_bench::{harness, sec5};

fn main() {
    let rows = sec5::run(42);
    println!("\n{}", sec5::render(&rows));

    harness::bench("sec5", "mitigation_matrix", 10, || sec5::run(42));
}
