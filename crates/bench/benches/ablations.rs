//! Design-choice ablations (see DESIGN.md §5): prints the ablation report,
//! then benchmarks the amplification sweep.

use ssdhammer_bench::{ablations, harness};

fn main() {
    println!("\n{}", ablations::render(5));

    harness::bench("ablations", "amplification_sweep", 10, || {
        ablations::amplification_sweep(5)
    });
}
