//! Design-choice ablations (see DESIGN.md §5): prints the ablation report,
//! then benchmarks the amplification sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::ablations;

fn bench(c: &mut Criterion) {
    println!("\n{}", ablations::render(5));

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("amplification_sweep", |b| {
        b.iter(|| ablations::amplification_sweep(5));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
