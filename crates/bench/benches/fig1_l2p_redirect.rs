//! E2 / Figure 1: prints the reproduced mechanism run, then benchmarks one
//! full primitive execution (setup + hammer burst + detection).

use ssdhammer_bench::{fig1, harness};

fn main() {
    let r = fig1::run(9);
    println!("\n{}", fig1::render(&r));
    assert!(!r.redirections.is_empty(), "figure 1 must reproduce");

    harness::bench("fig1", "two_sided_primitive", 10, || fig1::run(9));
}
