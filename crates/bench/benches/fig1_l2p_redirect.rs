//! E2 / Figure 1: prints the reproduced mechanism run, then benchmarks one
//! full primitive execution (setup + hammer burst + detection).

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::fig1;

fn bench(c: &mut Criterion) {
    let r = fig1::run(9);
    println!("\n{}", fig1::render(&r));
    assert!(!r.redirections.is_empty(), "figure 1 must reproduce");

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("two_sided_primitive", |b| {
        b.iter(|| fig1::run(9));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
