//! E7 / §2.3: prints the feasibility table, then benchmarks the DRAM
//! activation-rate measurement across interface generations.

use ssdhammer_bench::{harness, sec23};

fn main() {
    let rows = sec23::run(1);
    println!("\n{}", sec23::render(&rows));

    harness::bench("sec23", "feasibility_sweep", 10, || sec23::run(1));
}
