//! E7 / §2.3: prints the feasibility table, then benchmarks the DRAM
//! activation-rate measurement across interface generations.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::sec23;

fn bench(c: &mut Criterion) {
    let rows = sec23::run(1);
    println!("\n{}", sec23::render(&rows));

    let mut group = c.benchmark_group("sec23");
    group.sample_size(10);
    group.bench_function("feasibility_sweep", |b| {
        b.iter(|| sec23::run(1));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
