//! E4 / Figure 3: prints the end-to-end exploit result and the spray-limit
//! ablation, then benchmarks one attack cycle's worth of work.

use ssdhammer_bench::{fig3, harness};

fn main() {
    let r = fig3::run(7);
    println!("\n{}", fig3::render(&r));
    let ablation = fig3::spray_ablation(7);
    println!("{}", fig3::render_ablation(&ablation));

    harness::bench("fig3", "end_to_end_demo", 10, || fig3::run(7));
}
