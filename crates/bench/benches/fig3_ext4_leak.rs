//! E4 / Figure 3: prints the end-to-end exploit result and the spray-limit
//! ablation, then benchmarks one attack cycle's worth of work.

use criterion::{criterion_group, criterion_main, Criterion};
use ssdhammer_bench::fig3;

fn bench(c: &mut Criterion) {
    let r = fig3::run(7);
    println!("\n{}", fig3::render(&r));
    let ablation = fig3::spray_ablation(7);
    println!("{}", fig3::render_ablation(&ablation));

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("end_to_end_demo", |b| {
        b.iter(|| fig3::run(7));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
